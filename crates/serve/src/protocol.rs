//! The wire protocol: a minimal line-framed HTTP/1.1 subset.
//!
//! The grammar the parser accepts (and nothing more):
//!
//! ```text
//! request      = request-line *( header CRLF ) CRLF [ body ]
//! request-line = method SP path SP "HTTP/1.1" CRLF
//! method       = "GET" | "POST"
//! header       = name ":" OWS value
//! body         = Content-Length octets (required for POST)
//! ```
//!
//! Lines end in `\r\n` or bare `\n`. Header names are matched
//! case-insensitively. Every way an input can be malformed — a garbled
//! request line, oversized headers, a truncated body, invalid UTF-8, a
//! socket read timeout — maps to a typed [`ProtocolError`]; the parser
//! never panics and, given a reader with a bounded read timeout, never
//! hangs. The proptest fuzz suite in `tests/serve_protocol.rs` drives
//! arbitrary bytes through [`parse_request`] to pin exactly that.

use std::io::{BufRead, Write};

/// Every way a request frame can be rejected. The server maps each
/// variant to an HTTP status; the Display text is the client-visible
/// diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The request line was not `METHOD SP PATH SP HTTP/1.1`.
    MalformedRequestLine,
    /// The method is not GET or POST.
    UnsupportedMethod(String),
    /// A header line had no `:` separator.
    MalformedHeader,
    /// The header block exceeded the configured byte budget.
    HeadersTooLarge {
        /// The configured budget.
        limit: usize,
    },
    /// A POST arrived without a Content-Length header.
    MissingContentLength,
    /// Content-Length was not a non-negative integer.
    BadContentLength(String),
    /// The declared body exceeds the configured deck-byte budget.
    BodyTooLarge {
        /// The declared Content-Length.
        declared: usize,
        /// The configured budget.
        limit: usize,
    },
    /// The connection closed before the declared body arrived.
    TruncatedBody {
        /// Bytes actually received.
        got: usize,
        /// Bytes the Content-Length promised.
        want: usize,
    },
    /// A header value that must be valid UTF-8 / ASCII was not.
    InvalidHeaderEncoding,
    /// A named header carried an unusable value.
    BadHeaderValue {
        /// The offending header, lowercased.
        name: String,
        /// What was wrong with it.
        reason: String,
    },
    /// The socket's bounded read deadline expired mid-request — the
    /// typed alternative to a wedged worker.
    Timeout,
    /// The peer closed the connection before a full request arrived.
    ConnectionClosed,
    /// Any other I/O failure while reading the frame.
    Io(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::MalformedRequestLine => {
                write!(f, "malformed request line (want `METHOD PATH HTTP/1.1`)")
            }
            ProtocolError::UnsupportedMethod(m) => {
                write!(f, "unsupported method {m:?} (want GET or POST)")
            }
            ProtocolError::MalformedHeader => write!(f, "malformed header line (missing `:`)"),
            ProtocolError::HeadersTooLarge { limit } => {
                write!(f, "header block exceeds {limit} bytes")
            }
            ProtocolError::MissingContentLength => write!(f, "POST requires Content-Length"),
            ProtocolError::BadContentLength(v) => {
                write!(f, "Content-Length {v:?} is not a non-negative integer")
            }
            ProtocolError::BodyTooLarge { declared, limit } => {
                write!(
                    f,
                    "declared body of {declared} bytes exceeds {limit}-byte limit"
                )
            }
            ProtocolError::TruncatedBody { got, want } => {
                write!(f, "body truncated: got {got} of {want} bytes")
            }
            ProtocolError::InvalidHeaderEncoding => {
                write!(f, "request frame is not valid UTF-8 where it must be")
            }
            ProtocolError::BadHeaderValue { name, reason } => {
                write!(f, "bad {name} header: {reason}")
            }
            ProtocolError::Timeout => write!(f, "read deadline expired mid-request"),
            ProtocolError::ConnectionClosed => {
                write!(f, "connection closed before a full request arrived")
            }
            ProtocolError::Io(e) => write!(f, "i/o error reading request: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET` or `POST`.
    pub method: String,
    /// The request path, e.g. `/run`.
    pub path: String,
    /// Headers as `(lowercased-name, trimmed-value)` in arrival order.
    pub headers: Vec<(String, String)>,
    /// The raw body (empty for GET).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with this (lowercase) name, if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Map an I/O error to its typed protocol meaning: timeouts stay
/// timeouts, vanished peers read as closed connections.
#[must_use]
pub fn io_error(e: &std::io::Error) -> ProtocolError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ProtocolError::Timeout,
        std::io::ErrorKind::UnexpectedEof | std::io::ErrorKind::ConnectionReset => {
            ProtocolError::ConnectionClosed
        }
        _ => ProtocolError::Io(e.to_string()),
    }
}

/// Read one `\n`-terminated line of at most `limit` bytes (terminator
/// excluded, `\r` trimmed). `Ok(None)` = clean EOF before any byte.
fn read_line_bounded(
    reader: &mut impl BufRead,
    limit: usize,
) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(ProtocolError::ConnectionClosed);
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(Some(line));
                }
                if line.len() >= limit {
                    return Err(ProtocolError::HeadersTooLarge { limit });
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(io_error(&e)),
        }
    }
}

/// Parse one request frame from `reader`.
///
/// `max_header_bytes` bounds the request line and the whole header
/// block; `max_body_bytes` bounds the *declared* Content-Length (the
/// body is rejected before a byte of it is read). With a read timeout
/// set on the underlying socket this function always returns in
/// bounded time — every failure mode is a typed [`ProtocolError`].
///
/// # Errors
///
/// See [`ProtocolError`]; one variant per way a frame can go wrong.
pub fn parse_request(
    reader: &mut impl BufRead,
    max_header_bytes: usize,
    max_body_bytes: usize,
) -> Result<Request, ProtocolError> {
    let Some(line) = read_line_bounded(reader, max_header_bytes)? else {
        return Err(ProtocolError::ConnectionClosed);
    };
    let line = String::from_utf8(line).map_err(|_| ProtocolError::InvalidHeaderEncoding)?;
    let mut parts = line.split(' ');
    let (Some(method), Some(path), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(ProtocolError::MalformedRequestLine);
    };
    if version != "HTTP/1.1" || path.is_empty() || !path.starts_with('/') {
        return Err(ProtocolError::MalformedRequestLine);
    }
    if method != "GET" && method != "POST" {
        return Err(ProtocolError::UnsupportedMethod(method.to_string()));
    }

    let mut headers = Vec::new();
    let mut header_bytes = line.len();
    loop {
        let Some(raw) = read_line_bounded(reader, max_header_bytes)? else {
            return Err(ProtocolError::ConnectionClosed);
        };
        if raw.is_empty() {
            break;
        }
        header_bytes += raw.len();
        if header_bytes > max_header_bytes {
            return Err(ProtocolError::HeadersTooLarge {
                limit: max_header_bytes,
            });
        }
        let raw = String::from_utf8(raw).map_err(|_| ProtocolError::InvalidHeaderEncoding)?;
        let Some((name, value)) = raw.split_once(':') else {
            return Err(ProtocolError::MalformedHeader);
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut body = Vec::new();
    if method == "POST" {
        let declared = match headers.iter().find(|(n, _)| n == "content-length") {
            None => return Err(ProtocolError::MissingContentLength),
            Some((_, v)) => v
                .parse::<usize>()
                .map_err(|_| ProtocolError::BadContentLength(v.clone()))?,
        };
        if declared > max_body_bytes {
            return Err(ProtocolError::BodyTooLarge {
                declared,
                limit: max_body_bytes,
            });
        }
        body.resize(declared, 0);
        let mut got = 0;
        while got < declared {
            match reader.read(&mut body[got..]) {
                Ok(0) => {
                    return Err(ProtocolError::TruncatedBody {
                        got,
                        want: declared,
                    })
                }
                Ok(n) => got += n,
                Err(e) => {
                    return match io_error(&e) {
                        // Mid-body, a timeout *is* a truncation with a
                        // better-known cause; keep it distinct.
                        ProtocolError::ConnectionClosed => Err(ProtocolError::TruncatedBody {
                            got,
                            want: declared,
                        }),
                        other => Err(other),
                    };
                }
            }
        }
    }

    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    })
}

/// Write a complete fixed-length response frame.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    write!(w, "\r\n{body}")?;
    w.flush()
}

/// Escape a string for embedding in a JSON double-quoted literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Request, ProtocolError> {
        parse_request(&mut Cursor::new(bytes), 4096, 65536)
    }

    #[test]
    fn well_formed_post_parses() {
        let req = parse(b"POST /run HTTP/1.1\r\nContent-Length: 5\r\nX-Tenant: alice\r\n\r\nhello")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.header("x-tenant"), Some("alice"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn bare_lf_line_endings_parse_too() {
        let req = parse(b"GET /health HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/health");
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_frames_yield_typed_errors() {
        assert_eq!(
            parse(b"nonsense\r\n\r\n").unwrap_err(),
            ProtocolError::MalformedRequestLine
        );
        assert_eq!(
            parse(b"PUT /run HTTP/1.1\r\n\r\n").unwrap_err(),
            ProtocolError::UnsupportedMethod("PUT".into())
        );
        assert_eq!(
            parse(b"POST /run HTTP/1.1\r\nno-colon-here\r\n\r\n").unwrap_err(),
            ProtocolError::MalformedHeader
        );
        assert_eq!(
            parse(b"POST /run HTTP/1.1\r\n\r\n").unwrap_err(),
            ProtocolError::MissingContentLength
        );
        assert_eq!(
            parse(b"POST /run HTTP/1.1\r\nContent-Length: -3\r\n\r\n").unwrap_err(),
            ProtocolError::BadContentLength("-3".into())
        );
        assert!(matches!(
            parse(b"POST /run HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n").unwrap_err(),
            ProtocolError::BodyTooLarge { .. }
        ));
        assert_eq!(
            parse(b"POST /run HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err(),
            ProtocolError::TruncatedBody { got: 3, want: 10 }
        );
        assert_eq!(
            parse(b"GET /x HTTP/1.1\r\nX: \xff\xfe\r\n\r\n").unwrap_err(),
            ProtocolError::InvalidHeaderEncoding
        );
        assert_eq!(parse(b"").unwrap_err(), ProtocolError::ConnectionClosed);
    }

    #[test]
    fn oversized_headers_are_rejected_before_the_body() {
        let mut frame = b"POST /run HTTP/1.1\r\n".to_vec();
        frame.extend(std::iter::repeat_n(b'a', 5000));
        let err = parse_request(&mut Cursor::new(&frame), 256, 65536).unwrap_err();
        assert!(matches!(err, ProtocolError::HeadersTooLarge { limit: 256 }));
    }

    #[test]
    fn response_frames_are_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", &[("Retry-After", "1")], "{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn json_escape_handles_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
