//! Tenant quarantine: trim the adversarial fraction, keep the healthy
//! majority fast.
//!
//! The policy mirrors trimmed robust clustering: a tenant whose decks
//! repeatedly fail *health* checks (sentinel aborts, NaN-poisoned
//! physics, comm faults, blown deadlines) is quarantined — admissions
//! rejected with a typed retry-after — for an exponentially growing
//! window. Deck syntax errors and protocol mistakes are **not** health
//! failures: a typo must never quarantine anyone. A single healthy
//! completion resets both the failure streak and the backoff level.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// When quarantine starts and how it backs off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinePolicy {
    /// Consecutive health failures that trigger quarantine.
    pub threshold: u32,
    /// First quarantine window; doubles each re-quarantine.
    pub base: Duration,
    /// Ceiling on the quarantine window.
    pub cap: Duration,
}

impl Default for QuarantinePolicy {
    fn default() -> Self {
        QuarantinePolicy {
            threshold: 3,
            base: Duration::from_millis(250),
            cap: Duration::from_secs(30),
        }
    }
}

/// Why an admission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The tenant is quarantined; retry after this long.
    Quarantined {
        /// Time remaining in the quarantine window.
        retry_after: Duration,
    },
    /// The tenant already has its full in-flight allowance running.
    TooManyInFlight {
        /// Currently running requests for this tenant.
        in_flight: usize,
        /// The per-tenant ceiling.
        limit: usize,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Quarantined { retry_after } => write!(
                f,
                "tenant quarantined after repeated health failures; retry in {} ms",
                retry_after.as_millis()
            ),
            AdmitError::TooManyInFlight { in_flight, limit } => write!(
                f,
                "tenant has {in_flight} requests in flight (limit {limit})"
            ),
        }
    }
}

impl std::error::Error for AdmitError {}

/// How a finished request bears on its tenant's health standing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Completed cleanly: resets the failure streak and backoff level.
    Healthy,
    /// Failed a health check (sentinel abort, comm fault, deadline):
    /// extends the streak and may quarantine.
    HealthFailure,
    /// Failed for a non-health reason (deck typo, protocol error):
    /// leaves the streak untouched.
    Unrelated,
}

#[derive(Debug, Default)]
struct TenantState {
    in_flight: usize,
    consecutive_failures: u32,
    quarantined_until: Option<Instant>,
    /// How many times this tenant has been quarantined without an
    /// intervening healthy run; drives the exponential window.
    quarantine_level: u32,
}

/// The per-tenant admission ledger: in-flight counts, failure streaks
/// and quarantine state, shared across server workers.
#[derive(Debug)]
pub struct TenantLedger {
    policy: QuarantinePolicy,
    max_inflight: usize,
    tenants: Mutex<HashMap<String, TenantState>>,
}

impl TenantLedger {
    /// A ledger enforcing `policy` and `max_inflight` per tenant.
    #[must_use]
    pub fn new(policy: QuarantinePolicy, max_inflight: usize) -> Self {
        TenantLedger {
            policy,
            max_inflight: max_inflight.max(1),
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// Try to admit one request for `tenant`; on success the tenant's
    /// in-flight count is incremented and the caller **must** pair this
    /// with exactly one [`TenantLedger::finish`].
    ///
    /// # Errors
    ///
    /// [`AdmitError::Quarantined`] while the tenant's window is open,
    /// [`AdmitError::TooManyInFlight`] at the in-flight ceiling.
    pub fn admit(&self, tenant: &str) -> Result<(), AdmitError> {
        let mut tenants = self.tenants.lock().expect("tenant ledger poisoned");
        let state = tenants.entry(tenant.to_string()).or_default();
        if let Some(until) = state.quarantined_until {
            let now = Instant::now();
            if now < until {
                return Err(AdmitError::Quarantined {
                    retry_after: until - now,
                });
            }
            state.quarantined_until = None;
        }
        if state.in_flight >= self.max_inflight {
            return Err(AdmitError::TooManyInFlight {
                in_flight: state.in_flight,
                limit: self.max_inflight,
            });
        }
        state.in_flight += 1;
        Ok(())
    }

    /// Record the outcome of an admitted request, releasing its
    /// in-flight slot and updating the tenant's health standing.
    pub fn finish(&self, tenant: &str, outcome: RunOutcome) {
        let mut tenants = self.tenants.lock().expect("tenant ledger poisoned");
        let state = tenants.entry(tenant.to_string()).or_default();
        state.in_flight = state.in_flight.saturating_sub(1);
        match outcome {
            RunOutcome::Healthy => {
                state.consecutive_failures = 0;
                state.quarantine_level = 0;
            }
            RunOutcome::Unrelated => {}
            RunOutcome::HealthFailure => {
                state.consecutive_failures += 1;
                if state.consecutive_failures >= self.policy.threshold {
                    let exp = state.quarantine_level.min(16);
                    let window = self
                        .policy
                        .base
                        .checked_mul(1u32 << exp.min(16))
                        .unwrap_or(self.policy.cap)
                        .min(self.policy.cap);
                    state.quarantined_until = Some(Instant::now() + window);
                    state.quarantine_level += 1;
                    // The streak restarts inside quarantine: the next
                    // `threshold` failures after release re-quarantine
                    // at the doubled window.
                    state.consecutive_failures = 0;
                }
            }
        }
    }

    /// Is `tenant` currently quarantined?
    #[must_use]
    pub fn is_quarantined(&self, tenant: &str) -> bool {
        let tenants = self.tenants.lock().expect("tenant ledger poisoned");
        tenants
            .get(tenant)
            .and_then(|s| s.quarantined_until)
            .is_some_and(|until| Instant::now() < until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_policy() -> QuarantinePolicy {
        QuarantinePolicy {
            threshold: 2,
            base: Duration::from_millis(20),
            cap: Duration::from_millis(100),
        }
    }

    #[test]
    fn health_failures_quarantine_at_the_threshold() {
        let ledger = TenantLedger::new(fast_policy(), 4);
        ledger.admit("mallory").unwrap();
        ledger.finish("mallory", RunOutcome::HealthFailure);
        assert!(
            !ledger.is_quarantined("mallory"),
            "one failure is not a streak"
        );
        ledger.admit("mallory").unwrap();
        ledger.finish("mallory", RunOutcome::HealthFailure);
        assert!(ledger.is_quarantined("mallory"));
        let err = ledger.admit("mallory").unwrap_err();
        assert!(matches!(err, AdmitError::Quarantined { .. }), "{err}");
        // An unrelated tenant is untouched.
        ledger.admit("alice").unwrap();
        ledger.finish("alice", RunOutcome::Healthy);
    }

    #[test]
    fn quarantine_windows_double_and_heal_on_success() {
        let ledger = TenantLedger::new(fast_policy(), 4);
        let trip = |ledger: &TenantLedger| {
            for _ in 0..2 {
                ledger.admit("m").unwrap();
                ledger.finish("m", RunOutcome::HealthFailure);
            }
        };
        trip(&ledger);
        let AdmitError::Quarantined { retry_after: w1 } = ledger.admit("m").unwrap_err() else {
            panic!("expected quarantine");
        };
        std::thread::sleep(w1 + Duration::from_millis(5));
        // Released — and the next streak quarantines with a doubled window.
        trip(&ledger);
        let AdmitError::Quarantined { retry_after: w2 } = ledger.admit("m").unwrap_err() else {
            panic!("expected re-quarantine");
        };
        assert!(
            w2 > w1,
            "window must grow: first {} ms, second {} ms",
            w1.as_millis(),
            w2.as_millis()
        );
        std::thread::sleep(w2 + Duration::from_millis(5));
        // A healthy completion resets the level: the next streak gets
        // the base window again.
        ledger.admit("m").unwrap();
        ledger.finish("m", RunOutcome::Healthy);
        trip(&ledger);
        let AdmitError::Quarantined { retry_after: w3 } = ledger.admit("m").unwrap_err() else {
            panic!("expected quarantine after reset");
        };
        assert!(w3 <= w1, "healthy run must reset the backoff level");
    }

    #[test]
    fn unrelated_failures_never_quarantine() {
        let ledger = TenantLedger::new(fast_policy(), 4);
        for _ in 0..10 {
            ledger.admit("typo").unwrap();
            ledger.finish("typo", RunOutcome::Unrelated);
        }
        assert!(!ledger.is_quarantined("typo"));
    }

    #[test]
    fn in_flight_ceiling_is_enforced_per_tenant() {
        let ledger = TenantLedger::new(QuarantinePolicy::default(), 2);
        ledger.admit("a").unwrap();
        ledger.admit("a").unwrap();
        assert!(matches!(
            ledger.admit("a").unwrap_err(),
            AdmitError::TooManyInFlight {
                in_flight: 2,
                limit: 2
            }
        ));
        ledger.admit("b").unwrap();
        ledger.finish("a", RunOutcome::Healthy);
        ledger.admit("a").unwrap();
    }
}
