//! The server: bounded queue, worker pool, per-request supervision,
//! graceful drain.
//!
//! One accept thread feeds a **bounded** connection queue (load
//! shedding: a full queue answers `503 overloaded` immediately, never
//! buffers without bound). A fixed set of worker threads pulls
//! connections, parses frames under a socket read deadline, runs
//! admission control, and executes simulations in bounded segments so
//! every in-flight run observes the drain flag within
//! `drain_check_steps` steps. Data-parallel kernels of concurrent
//! requests share one work-stealing pool ([`rayon::ThreadPool`]).
//!
//! Defense in depth, per request: typed [`ResourceLimits`] at deck
//! validation, a wall-clock deadline enforced symmetrically inside the
//! hydro loop, the health sentinel on every step, comm faults surfacing
//! as typed errors under bounded timeouts, panics caught at the request
//! boundary, and repeated health failures quarantining the tenant.

use std::collections::VecDeque;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use bookleaf_core::{
    CheckpointStore, ExecutorKind, Observer, RunReport, SaveOutcome, Simulation, StepView,
};
use bookleaf_typhon::{FaultKind, FaultPlan};
use bookleaf_util::{crc32_f64s, BookLeafError, CheckpointError, DeckError};

use crate::cache::DeckCache;
use crate::limits::{admit_deck, ResourceLimits};
use crate::protocol::{json_escape, parse_request, write_response, ProtocolError, Request};
use crate::quarantine::{AdmitError, QuarantinePolicy, RunOutcome, TenantLedger};

// ---------------------------------------------------------------------------
// Bounded queue (the crossbeam shim only has unbounded channels).

/// A fixed-capacity MPMC queue on `Mutex<VecDeque>` + `Condvar`:
/// `try_push` never blocks (shedding is the caller's job), `pop` waits
/// with a bounded timeout so workers notice shutdown.
struct BoundedQueue<T> {
    inner: Mutex<VecDeque<T>>,
    capacity: usize,
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            ready: Condvar::new(),
        }
    }

    /// Push unless full; a full queue hands the item back for shedding.
    fn try_push(&self, item: T) -> Result<(), T> {
        let mut q = self.inner.lock().expect("queue poisoned");
        if q.len() >= self.capacity {
            return Err(item);
        }
        q.push_back(item);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let q = self.inner.lock().expect("queue poisoned");
        let (mut q, _) = self
            .ready
            .wait_timeout_while(q, timeout, |q| q.is_empty())
            .expect("queue poisoned");
        q.pop_front()
    }

    fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").len()
    }

    fn wake_all(&self) {
        self.ready.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Configuration.

/// Everything a [`Server`] is configured with.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Worker threads handling requests concurrently.
    pub workers: usize,
    /// Bounded connection-queue depth; beyond it, `503 overloaded`.
    pub queue_depth: usize,
    /// Admission-control ceilings.
    pub limits: ResourceLimits,
    /// Default per-request wall-clock deadline (a tenant's
    /// `X-Deadline-Ms` can only shorten it). `None` = no default.
    pub default_deadline: Option<Duration>,
    /// Bounded comm-layer wait for distributed runs — the no-hang
    /// guarantee under injected faults.
    pub comm_timeout: Duration,
    /// Honour `X-Fault-Inject` headers (chaos testing); when `false`
    /// the header earns a typed `403`.
    pub allow_fault_injection: bool,
    /// Tenant quarantine policy.
    pub quarantine: QuarantinePolicy,
    /// Where drain checkpoints are written and resume handles resolved.
    pub drain_dir: PathBuf,
    /// Byte budget for each drained request's checkpoint store.
    pub drain_budget_bytes: u64,
    /// Steps between drain-flag checks while a run executes.
    pub drain_check_steps: usize,
    /// Parsed-deck cache capacity (decks, FIFO eviction).
    pub cache_entries: usize,
    /// Threads in the shared work-stealing kernel pool.
    pub pool_threads: usize,
    /// Socket read deadline: no request frame may wedge a worker.
    pub read_timeout: Duration,
    /// Byte budget for a request's header block.
    pub max_header_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 32,
            limits: ResourceLimits::default(),
            default_deadline: Some(Duration::from_secs(60)),
            comm_timeout: Duration::from_secs(2),
            allow_fault_injection: false,
            quarantine: QuarantinePolicy::default(),
            drain_dir: std::env::temp_dir().join("bookleaf_serve_drain"),
            drain_budget_bytes: 64 * 1024 * 1024,
            drain_check_steps: 10,
            cache_entries: 32,
            pool_threads: 2,
            read_timeout: Duration::from_secs(5),
            max_header_bytes: 8 * 1024,
        }
    }
}

// ---------------------------------------------------------------------------
// Shared server state.

struct Shared {
    config: ServeConfig,
    queue: BoundedQueue<TcpStream>,
    draining: AtomicBool,
    shutdown: AtomicBool,
    ledger: TenantLedger,
    cache: DeckCache,
    pool: rayon::ThreadPool,
    active: AtomicUsize,
    drained: AtomicUsize,
    shed: AtomicUsize,
    seq: AtomicU64,
}

/// A running server. Dropping it shuts it down (drain-free); call
/// [`Server::drain`] first for the graceful path.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the accept thread and workers, and start serving.
    ///
    /// # Errors
    ///
    /// Binding or thread/pool construction failures as `io::Error`.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(config.pool_threads.max(1))
            .build()
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        let shared = Arc::new(Shared {
            ledger: TenantLedger::new(config.quarantine, config.limits.max_inflight_per_tenant),
            cache: DeckCache::new(config.cache_entries),
            queue: BoundedQueue::new(config.queue_depth),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            pool,
            active: AtomicUsize::new(0),
            drained: AtomicUsize::new(0),
            shed: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            config,
        });

        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-accept".into())
                    .spawn(move || accept_loop(&listener, &shared))?,
            );
        }
        for i in 0..shared.config.workers.max(1) {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(Server {
            addr,
            shared,
            threads,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop admitting and wait (bounded by `timeout`) for in-flight
    /// work to finish or checkpoint. Running requests observe the
    /// drain flag at their next segment boundary, checkpoint through a
    /// byte-budgeted [`CheckpointStore`], and answer
    /// `202 {"status":"checkpointed","handle":...}`. Returns the
    /// number of requests that drained to checkpoints.
    pub fn drain(&self, timeout: Duration) -> usize {
        self.shared.draining.store(true, Ordering::SeqCst);
        let start = Instant::now();
        while start.elapsed() < timeout {
            if self.shared.active.load(Ordering::SeqCst) == 0 && self.shared.queue.len() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.shared.drained.load(Ordering::SeqCst)
    }

    /// Requests shed so far (`503 overloaded` answers).
    #[must_use]
    pub fn shed_count(&self) -> usize {
        self.shared.shed.load(Ordering::SeqCst)
    }

    /// Stop the server: close the accept loop, wake the workers, join
    /// every thread. Also runs on [`Drop`].
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.draining.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.shared.queue.wake_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------------
// Accept + worker loops.

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        if shared.draining.load(Ordering::SeqCst) {
            respond_error(
                &stream,
                503,
                "Service Unavailable",
                "draining",
                "server is draining; not admitting new work",
                &[],
            );
            continue;
        }
        if let Err(stream) = shared.queue.try_push(stream) {
            shared.shed.fetch_add(1, Ordering::SeqCst);
            respond_error(
                &stream,
                503,
                "Service Unavailable",
                "overloaded",
                "connection queue full; shedding load",
                &[("Retry-After", "1")],
            );
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Some(stream) = shared.queue.pop_timeout(Duration::from_millis(50)) else {
            continue;
        };
        shared.active.fetch_add(1, Ordering::SeqCst);
        handle_connection(shared, &stream);
        shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn respond_error(
    mut stream: &TcpStream,
    status: u16,
    reason: &str,
    kind: &str,
    message: &str,
    extra: &[(&str, &str)],
) {
    let body = format!(
        "{{\"status\":\"error\",\"kind\":\"{}\",\"error\":\"{}\"}}",
        json_escape(kind),
        json_escape(message)
    );
    let _ = write_response(&mut stream, status, reason, extra, &body);
}

fn protocol_status(err: &ProtocolError) -> (u16, &'static str) {
    match err {
        ProtocolError::UnsupportedMethod(_) => (405, "Method Not Allowed"),
        ProtocolError::HeadersTooLarge { .. } => (431, "Request Header Fields Too Large"),
        ProtocolError::BodyTooLarge { .. } => (413, "Content Too Large"),
        ProtocolError::Timeout => (408, "Request Timeout"),
        _ => (400, "Bad Request"),
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: &TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.read_timeout));
    let Ok(clone) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(clone);
    let req = match parse_request(
        &mut reader,
        shared.config.max_header_bytes,
        shared.config.limits.max_deck_bytes,
    ) {
        Ok(req) => req,
        Err(err) => {
            let (status, reason) = protocol_status(&err);
            respond_error(stream, status, reason, "protocol", &err.to_string(), &[]);
            return;
        }
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => {
            let body = format!(
                "{{\"status\":\"ok\",\"draining\":{},\"cached_decks\":{}}}",
                shared.draining.load(Ordering::SeqCst),
                shared.cache.len()
            );
            let mut w = stream;
            let _ = write_response(&mut w, 200, "OK", &[], &body);
        }
        ("POST", "/run") => handle_run(shared, stream, &req),
        ("GET", "/run") | ("POST", "/health") => {
            respond_error(
                stream,
                405,
                "Method Not Allowed",
                "protocol",
                "method not allowed on this path",
                &[],
            );
        }
        (_, path) => {
            respond_error(
                stream,
                404,
                "Not Found",
                "protocol",
                &format!("unknown path {path}"),
                &[],
            );
        }
    }
}

// ---------------------------------------------------------------------------
// /run: supervision parameters, execution, typed responses.

struct RunParams {
    tenant: String,
    deadline: Option<Instant>,
    comm_timeout: Duration,
    fault: Option<(FaultKind, usize, usize)>,
    stream_steps: bool,
    resume_handle: Option<String>,
}

fn bad_header(name: &str, reason: &str) -> ProtocolError {
    ProtocolError::BadHeaderValue {
        name: name.into(),
        reason: reason.into(),
    }
}

fn parse_params(req: &Request, config: &ServeConfig) -> Result<RunParams, ProtocolError> {
    let tenant = req.header("x-tenant").unwrap_or("anon").to_string();
    if tenant.is_empty() || tenant.len() > 64 {
        return Err(bad_header("x-tenant", "must be 1..=64 characters"));
    }
    let mut deadline_in = config.default_deadline;
    if let Some(v) = req.header("x-deadline-ms") {
        let ms: u64 = v
            .parse()
            .map_err(|_| bad_header("x-deadline-ms", "must be an integer millisecond count"))?;
        let requested = Duration::from_millis(ms);
        deadline_in = Some(deadline_in.map_or(requested, |d| d.min(requested)));
    }
    let mut comm_timeout = config.comm_timeout;
    if let Some(v) = req.header("x-comm-timeout-ms") {
        let ms: u64 = v
            .parse()
            .map_err(|_| bad_header("x-comm-timeout-ms", "must be an integer millisecond count"))?;
        comm_timeout = comm_timeout.min(Duration::from_millis(ms.max(1)));
    }
    let fault = match req.header("x-fault-inject") {
        None => None,
        Some(v) => {
            let mut parts = v.split(':');
            let (Some(kind), Some(step), Some(rank), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(bad_header("x-fault-inject", "want `<kind>:<step>:<rank>`"));
            };
            let kind: FaultKind = kind
                .parse()
                .map_err(|e: String| bad_header("x-fault-inject", &e))?;
            let step: usize = step
                .parse()
                .map_err(|_| bad_header("x-fault-inject", "step must be an integer"))?;
            let rank: usize = rank
                .parse()
                .map_err(|_| bad_header("x-fault-inject", "rank must be an integer"))?;
            Some((kind, step, rank))
        }
    };
    let stream_steps = matches!(req.header("x-stream"), Some("1" | "true"));
    let resume_handle = req.header("x-resume").map(str::to_string);
    if let Some(handle) = &resume_handle {
        let valid = !handle.is_empty()
            && handle.ends_with(".ckpt")
            && handle
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
            && !handle.contains("..");
        if !valid {
            return Err(bad_header("x-resume", "not a valid checkpoint handle"));
        }
        if !req.body.is_empty() {
            return Err(bad_header("x-resume", "resume requests take no body"));
        }
        if stream_steps {
            return Err(bad_header(
                "x-stream",
                "streaming is not available on resumed runs",
            ));
        }
    }
    Ok(RunParams {
        tenant,
        deadline: deadline_in.map(|d| Instant::now() + d),
        comm_timeout,
        fault,
        stream_steps,
        resume_handle,
    })
}

/// CRC-32 of the solution state (ρ, ε, node velocities, node
/// positions), bit-exact: two runs agree on this iff they agree
/// bitwise on the physics. The serve response carries it so clients —
/// and the chaos suite — can compare against unloaded runs.
#[must_use]
pub fn state_crc(sim: &Simulation) -> u32 {
    let state = sim.state();
    let mesh = sim.mesh();
    let mut values = Vec::with_capacity(2 * state.rho.len() + 4 * state.u.len());
    values.extend_from_slice(&state.rho);
    values.extend_from_slice(&state.ein);
    for v in &state.u {
        values.push(v.x);
        values.push(v.y);
    }
    for p in &mesh.nodes {
        values.push(p.x);
        values.push(p.y);
    }
    crc32_f64s(&values)
}

fn executor_name(executor: ExecutorKind) -> String {
    match executor {
        ExecutorKind::Serial => "serial".into(),
        ExecutorKind::FlatMpi { ranks } => format!("flat_mpi[{ranks}]"),
        ExecutorKind::Hybrid {
            ranks,
            threads_per_rank,
        } => format!("hybrid[{ranks}x{threads_per_rank}]"),
    }
}

/// Map a run failure to (HTTP status, reason, error kind, tenant
/// outcome). Health-class failures feed the quarantine ledger; deck
/// and checkpoint mistakes never do.
fn classify_run_error(err: &BookLeafError) -> (u16, &'static str, &'static str, RunOutcome) {
    match err {
        BookLeafError::Deck(_)
        | BookLeafError::InvalidDeck(_)
        | BookLeafError::MeshTopology(_)
        | BookLeafError::Partition(_) => (400, "Bad Request", "deck", RunOutcome::Unrelated),
        BookLeafError::Checkpoint(_) => (400, "Bad Request", "checkpoint", RunOutcome::Unrelated),
        BookLeafError::NegativeVolume { .. }
        | BookLeafError::TimestepCollapse { .. }
        | BookLeafError::InvalidState { .. }
        | BookLeafError::Unhealthy { .. } => (
            422,
            "Unprocessable Content",
            "unhealthy",
            RunOutcome::HealthFailure,
        ),
        BookLeafError::Comm(_) | BookLeafError::CommFault(_) => (
            500,
            "Internal Server Error",
            "comm_fault",
            RunOutcome::HealthFailure,
        ),
        BookLeafError::RankPanic { .. } => (
            500,
            "Internal Server Error",
            "rank_panic",
            RunOutcome::HealthFailure,
        ),
        BookLeafError::DeadlineExceeded { .. } => (
            504,
            "Gateway Timeout",
            "deadline",
            RunOutcome::HealthFailure,
        ),
    }
}

/// What one supervised execution ended as.
enum RunEnd {
    Done(Box<Simulation>, Box<RunReport>),
    Drained {
        handle: String,
        steps: u64,
        time: f64,
    },
    Failed(BookLeafError),
}

fn handle_run(shared: &Arc<Shared>, stream: &TcpStream, req: &Request) {
    if shared.draining.load(Ordering::SeqCst) {
        respond_error(
            stream,
            503,
            "Service Unavailable",
            "draining",
            "server is draining; not admitting new work",
            &[],
        );
        return;
    }
    let params = match parse_params(req, &shared.config) {
        Ok(p) => p,
        Err(err) => {
            let (status, reason) = protocol_status(&err);
            respond_error(stream, status, reason, "protocol", &err.to_string(), &[]);
            return;
        }
    };
    if params.fault.is_some() && !shared.config.allow_fault_injection {
        respond_error(
            stream,
            403,
            "Forbidden",
            "fault_injection_disabled",
            "this server does not honour X-Fault-Inject",
            &[],
        );
        return;
    }
    match shared.ledger.admit(&params.tenant) {
        Ok(()) => {}
        Err(err @ AdmitError::Quarantined { retry_after }) => {
            let ms = retry_after.as_millis();
            let secs = retry_after.as_secs().max(1).to_string();
            let body = format!(
                "{{\"status\":\"error\",\"kind\":\"quarantined\",\"error\":\"{}\",\"retry_after_ms\":{ms}}}",
                json_escape(&err.to_string())
            );
            let mut w = stream;
            let _ = write_response(
                &mut w,
                429,
                "Too Many Requests",
                &[("Retry-After", secs.as_str())],
                &body,
            );
            return;
        }
        Err(err @ AdmitError::TooManyInFlight { .. }) => {
            respond_error(
                stream,
                429,
                "Too Many Requests",
                "too_many_in_flight",
                &err.to_string(),
                &[("Retry-After", "1")],
            );
            return;
        }
    }
    // Admitted: exactly one `finish` below, whatever happens.
    let started = Instant::now();
    let (end, cached, responded) = execute(shared, stream, req, &params);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let outcome = match &end {
        RunEnd::Done(..) => RunOutcome::Healthy,
        // Being drained is the server's doing, not the tenant's.
        RunEnd::Drained { .. } => RunOutcome::Unrelated,
        RunEnd::Failed(err) => classify_run_error(err).3,
    };
    shared.ledger.finish(&params.tenant, outcome);
    if let RunEnd::Drained { .. } = &end {
        shared.drained.fetch_add(1, Ordering::SeqCst);
    }
    if responded {
        return;
    }
    match end {
        RunEnd::Done(sim, report) => {
            let crc = state_crc(&sim);
            let body = format!(
                "{{\"status\":\"ok\",\"name\":\"{}\",\"executor\":\"{}\",\"ranks\":{},\"steps\":{},\"time\":{:.17e},\"time_bits\":\"0x{:016x}\",\"energy_end_bits\":\"0x{:016x}\",\"state_crc\":{},\"cached_deck\":{},\"wall_ms\":{:.3}}}",
                json_escape(&report.name),
                executor_name(report.executor),
                report.ranks,
                report.steps,
                report.time,
                report.time.to_bits(),
                report.energy_end.to_bits(),
                crc,
                cached,
                wall_ms
            );
            let mut w = stream;
            let _ = write_response(&mut w, 200, "OK", &[], &body);
        }
        RunEnd::Drained {
            handle,
            steps,
            time,
        } => {
            let body = format!(
                "{{\"status\":\"checkpointed\",\"handle\":\"{}\",\"steps\":{steps},\"time\":{time:.17e}}}",
                json_escape(&handle)
            );
            let mut w = stream;
            let _ = write_response(&mut w, 202, "Accepted", &[], &body);
        }
        RunEnd::Failed(err) => {
            let (status, reason, kind, _) = classify_run_error(&err);
            respond_error(stream, status, reason, kind, &err.to_string(), &[]);
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming.

/// Streams one `step <n> t=<t> dt=<dt>` line per step as an HTTP chunk.
/// Write failures are remembered and silence the stream; they never
/// perturb the run (observers are read-only by contract).
struct StepStreamer {
    sink: Arc<Mutex<ChunkSink>>,
}

struct ChunkSink {
    stream: TcpStream,
    dead: bool,
}

impl ChunkSink {
    fn head(&mut self) {
        let head = "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
        if self.stream.write_all(head.as_bytes()).is_err() {
            self.dead = true;
        }
    }

    fn chunk(&mut self, text: &str) {
        if self.dead {
            return;
        }
        let frame = format!("{:x}\r\n{text}\r\n", text.len());
        if self.stream.write_all(frame.as_bytes()).is_err() {
            self.dead = true;
        }
    }

    fn finish(&mut self) {
        if !self.dead {
            let _ = self.stream.write_all(b"0\r\n\r\n");
            let _ = self.stream.flush();
        }
    }
}

impl Observer for StepStreamer {
    fn step_end(&mut self, view: &StepView<'_>) {
        if view.rank == 0 {
            let line = format!(
                "step {} t={:.9e} dt={:.9e}\n",
                view.step + 1,
                view.time,
                view.dt
            );
            self.sink.lock().expect("stream sink poisoned").chunk(&line);
        }
    }
}

// ---------------------------------------------------------------------------
// Supervised execution.

/// Build and run one request under full supervision. Returns the end
/// state, whether the deck came from cache, and whether the response
/// has already been written (streamed runs answer inline).
fn execute(
    shared: &Arc<Shared>,
    stream: &TcpStream,
    req: &Request,
    params: &RunParams,
) -> (RunEnd, bool, bool) {
    let config = &shared.config;
    let mut cached = false;
    let mut sink: Option<Arc<Mutex<ChunkSink>>> = None;

    let built: Result<Simulation, BookLeafError> = (|| {
        let mut builder = Simulation::builder();
        if let Some(handle) = &params.resume_handle {
            let path = config.drain_dir.join(handle);
            if !path.is_file() {
                return Err(BookLeafError::Checkpoint(CheckpointError::Io {
                    path: handle.clone(),
                    message: "no such checkpoint handle".into(),
                }));
            }
            builder = builder.resume(path);
        } else {
            let text = std::str::from_utf8(&req.body).map_err(|_| {
                BookLeafError::Deck(DeckError::Config {
                    message: "deck text is not valid UTF-8".into(),
                })
            })?;
            let input = admit_deck(text, &config.limits).map_err(BookLeafError::Deck)?;
            if params.stream_steps && input.executor != ExecutorKind::Serial {
                return Err(BookLeafError::InvalidDeck(
                    "X-Stream requires the serial executor".into(),
                ));
            }
            let (deck, hit) = shared
                .cache
                .get_or_build(&input)
                .map_err(BookLeafError::Deck)?;
            cached = hit;
            builder = builder.deck(deck).config(input.run_config());
        }
        builder = builder.comm_timeout(params.comm_timeout);
        if let Some(at) = params.deadline {
            builder = builder.deadline(at);
        }
        if let Some((kind, step, rank)) = params.fault {
            builder = builder.fault_plan(FaultPlan::new(0xB00C).with(kind, step, rank));
        }
        if params.stream_steps {
            if let Ok(clone) = stream.try_clone() {
                let sink_arc = Arc::new(Mutex::new(ChunkSink {
                    stream: clone,
                    dead: false,
                }));
                builder = builder.observer(StepStreamer {
                    sink: Arc::clone(&sink_arc),
                });
                sink = Some(sink_arc);
            }
        }
        builder.build()
    })();
    let sim = match built {
        Ok(sim) => sim,
        Err(err) => return (RunEnd::Failed(err), cached, false),
    };

    // If streaming, commit the chunked response head before the run.
    if let Some(sink) = &sink {
        sink.lock().expect("stream sink poisoned").head();
    }

    // Segmented supervised execution on the shared kernel pool, panics
    // caught at the request boundary.
    let shared2 = Arc::clone(shared);
    let tenant = params.tenant.clone();
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        run_supervised(&shared2, &tenant, sim)
    }));
    let end = match run {
        Ok(end) => end,
        Err(panic) => {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            RunEnd::Failed(BookLeafError::RankPanic { rank: 0, message })
        }
    };

    // Streaming: the final chunk carries the JSON verdict, then the
    // terminator; the fixed-length responder must not also fire.
    if let Some(sink) = sink {
        let mut s = sink.lock().expect("stream sink poisoned");
        let verdict = match &end {
            RunEnd::Done(sim, report) => format!(
                "{{\"status\":\"ok\",\"steps\":{},\"time_bits\":\"0x{:016x}\",\"state_crc\":{}}}\n",
                report.steps,
                report.time.to_bits(),
                state_crc(sim)
            ),
            RunEnd::Drained { handle, .. } => format!(
                "{{\"status\":\"checkpointed\",\"handle\":\"{}\"}}\n",
                json_escape(handle)
            ),
            RunEnd::Failed(err) => {
                let (_, _, kind, _) = classify_run_error(err);
                format!(
                    "{{\"status\":\"error\",\"kind\":\"{kind}\",\"error\":\"{}\"}}\n",
                    json_escape(&err.to_string())
                )
            }
        };
        s.chunk(&verdict);
        s.finish();
        return (end, cached, true);
    }
    (end, cached, false)
}

/// The segment loop: run `drain_check_steps` at a time, checkpointing
/// out with a resumable handle the moment the server starts draining.
fn run_supervised(shared: &Arc<Shared>, tenant: &str, mut sim: Simulation) -> RunEnd {
    shared.pool.install(|| loop {
        if shared.draining.load(Ordering::SeqCst) {
            let ckpt = match sim.checkpoint() {
                Ok(c) => c,
                Err(err) => return RunEnd::Failed(err),
            };
            let seq = shared.seq.fetch_add(1, Ordering::SeqCst);
            let prefix = format!("{}_{seq:06}", sanitize(tenant));
            let store = CheckpointStore::new(&shared.config.drain_dir, &prefix, 1)
                .max_total_bytes(shared.config.drain_budget_bytes);
            let path = match store.save(&ckpt) {
                Ok(SaveOutcome::Written(path) | SaveOutcome::WrittenOverBudget { path, .. }) => {
                    path
                }
                Ok(SaveOutcome::Rejected { reason, .. }) => {
                    return RunEnd::Failed(BookLeafError::Checkpoint(CheckpointError::Corrupt {
                        what: reason,
                    }))
                }
                Err(e) => return RunEnd::Failed(BookLeafError::Checkpoint(e)),
            };
            let handle = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            return RunEnd::Drained {
                handle,
                steps: ckpt.snap.steps,
                time: ckpt.snap.time,
            };
        }
        match sim.run_segment(shared.config.drain_check_steps.max(1)) {
            Err(err) => return RunEnd::Failed(err),
            Ok(report) => {
                if sim.complete() {
                    return RunEnd::Done(Box::new(sim), Box::new(report));
                }
            }
        }
    })
}

fn sanitize(tenant: &str) -> String {
    tenant
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_classification_separates_health_from_deck_mistakes() {
        let deck = BookLeafError::InvalidDeck("nope".into());
        assert_eq!(classify_run_error(&deck).3, RunOutcome::Unrelated);
        let sentinel = BookLeafError::Unhealthy {
            step: 3,
            diagnosis: bookleaf_util::HealthDiagnosis::NonFinite {
                rank: 0,
                field: bookleaf_util::HealthField::Rho,
                index: 7,
            },
        };
        let (status, _, kind, outcome) = classify_run_error(&sentinel);
        assert_eq!((status, kind), (422, "unhealthy"));
        assert_eq!(outcome, RunOutcome::HealthFailure);
        let deadline = BookLeafError::DeadlineExceeded { step: 9 };
        let (status, _, kind, outcome) = classify_run_error(&deadline);
        assert_eq!((status, kind), (504, "deadline"));
        assert_eq!(outcome, RunOutcome::HealthFailure);
    }

    #[test]
    fn bounded_queue_sheds_when_full_and_pops_fifo() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(2));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(3));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), None);
    }

    #[test]
    fn tenant_names_sanitize_to_filesystem_safe_prefixes() {
        assert_eq!(sanitize("alice"), "alice");
        assert_eq!(sanitize("../../etc"), "______etc");
        assert_eq!(sanitize("team a/b"), "team_a_b");
    }
}
