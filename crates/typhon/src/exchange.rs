//! Schedule-driven halo exchange.
//!
//! A [`bookleaf_mesh::SubMesh`] carries, per neighbouring rank, matched
//! send/recv index lists (sorted by global id on both sides). The
//! functions here pack a field along the send lists, post all sends, then
//! receive and unpack — the non-blocking-send / blocking-receive pattern
//! Typhon uses over MPI.
//!
//! BookLeaf performs exactly **two** exchange phases per Lagrangian
//! half-step: one immediately before the viscosity calculation (element
//! state + node kinematics) and one immediately before the acceleration
//! (element corner masses and forces). The driver composes those phases
//! from these three primitives.

use bookleaf_mesh::submesh::ExchangeList;
use bookleaf_util::Vec2;

use crate::runtime::RankCtx;

/// Exchange a per-entity scalar field (element- or node-indexed,
/// depending on which schedule is passed). After the call, every `recv`
/// position holds the owner's value.
pub fn exchange_scalar(ctx: &RankCtx, schedule: &[ExchangeList], field: &mut [f64]) {
    let tag = ctx.next_tag();
    for ex in schedule {
        let payload: Vec<f64> = ex.send.iter().map(|&l| field[l as usize]).collect();
        ctx.send(ex.rank, tag, payload);
    }
    for ex in schedule {
        let payload = ctx.recv(ex.rank, tag);
        debug_assert_eq!(payload.len(), ex.recv.len());
        for (&l, v) in ex.recv.iter().zip(payload) {
            field[l as usize] = v;
        }
    }
}

/// Exchange a per-entity [`Vec2`] field (positions, velocities).
pub fn exchange_vec2(ctx: &RankCtx, schedule: &[ExchangeList], field: &mut [Vec2]) {
    let tag = ctx.next_tag();
    for ex in schedule {
        let mut payload = Vec::with_capacity(ex.send.len() * 2);
        for &l in &ex.send {
            let v = field[l as usize];
            payload.push(v.x);
            payload.push(v.y);
        }
        ctx.send(ex.rank, tag, payload);
    }
    for ex in schedule {
        let payload = ctx.recv(ex.rank, tag);
        debug_assert_eq!(payload.len(), ex.recv.len() * 2);
        for (i, &l) in ex.recv.iter().enumerate() {
            field[l as usize] = Vec2::new(payload[2 * i], payload[2 * i + 1]);
        }
    }
}

/// Exchange a per-element-corner field (corner masses, corner force
/// components): four doubles per schedule entry.
pub fn exchange_corner(ctx: &RankCtx, schedule: &[ExchangeList], field: &mut [[f64; 4]]) {
    let tag = ctx.next_tag();
    for ex in schedule {
        let mut payload = Vec::with_capacity(ex.send.len() * 4);
        for &l in &ex.send {
            payload.extend_from_slice(&field[l as usize]);
        }
        ctx.send(ex.rank, tag, payload);
    }
    for ex in schedule {
        let payload = ctx.recv(ex.rank, tag);
        debug_assert_eq!(payload.len(), ex.recv.len() * 4);
        for (i, &l) in ex.recv.iter().enumerate() {
            field[l as usize].copy_from_slice(&payload[4 * i..4 * i + 4]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Typhon;
    use bookleaf_mesh::{generate_rect, RectSpec, SubMeshPlan};

    /// Build a 6x6 grid split into two vertical stripes and run `f` on
    /// both ranks with their submeshes.
    fn with_two_ranks<R: Send>(
        f: impl Fn(&RankCtx, &bookleaf_mesh::SubMesh) -> R + Sync,
    ) -> Vec<R> {
        let m = generate_rect(&RectSpec::unit_square(6), |_| 0).unwrap();
        let owner: Vec<usize> = (0..m.n_elements())
            .map(|e| usize::from(e % 6 >= 3))
            .collect();
        let subs = SubMeshPlan::build(&m, &owner, 2).unwrap();
        Typhon::run(2, |ctx| f(ctx, &subs[ctx.rank()])).unwrap()
    }

    #[test]
    fn scalar_halo_receives_owner_values() {
        let out = with_two_ranks(|ctx, sub| {
            // Field = global element id for owned, -1 for ghosts.
            let mut field: Vec<f64> = (0..sub.mesh.n_elements())
                .map(|e| {
                    if sub.owns_element(e) {
                        sub.el_l2g[e] as f64
                    } else {
                        -1.0
                    }
                })
                .collect();
            exchange_scalar(ctx, &sub.el_exchange, &mut field);
            // After exchange every ghost must hold its global id.
            field
                .iter()
                .enumerate()
                .all(|(e, &v)| v == sub.el_l2g[e] as f64)
        });
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    fn vec2_node_halo() {
        let out = with_two_ranks(|ctx, sub| {
            let mut field: Vec<Vec2> = (0..sub.mesh.n_nodes())
                .map(|n| {
                    if sub.owns_node(n) {
                        let g = sub.nd_l2g[n] as f64;
                        Vec2::new(g, 2.0 * g)
                    } else {
                        Vec2::new(-1.0, -1.0)
                    }
                })
                .collect();
            exchange_vec2(ctx, &sub.nd_exchange, &mut field);
            field.iter().enumerate().all(|(n, v)| {
                let g = sub.nd_l2g[n] as f64;
                *v == Vec2::new(g, 2.0 * g)
            })
        });
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    fn corner_halo() {
        let out = with_two_ranks(|ctx, sub| {
            let mut field: Vec<[f64; 4]> = (0..sub.mesh.n_elements())
                .map(|e| {
                    if sub.owns_element(e) {
                        let g = sub.el_l2g[e] as f64;
                        [g, g + 0.25, g + 0.5, g + 0.75]
                    } else {
                        [f64::NAN; 4]
                    }
                })
                .collect();
            exchange_corner(ctx, &sub.el_exchange, &mut field);
            field.iter().enumerate().all(|(e, cf)| {
                let g = sub.el_l2g[e] as f64;
                cf[0] == g && cf[3] == g + 0.75
            })
        });
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    fn repeated_exchanges_stay_matched() {
        // Ten successive scalar exchanges must not cross tags.
        let out = with_two_ranks(|ctx, sub| {
            let mut ok = true;
            for round in 0..10 {
                let mut field: Vec<f64> = (0..sub.mesh.n_elements())
                    .map(|e| {
                        if sub.owns_element(e) {
                            (sub.el_l2g[e] as f64) + 1000.0 * round as f64
                        } else {
                            -1.0
                        }
                    })
                    .collect();
                exchange_scalar(ctx, &sub.el_exchange, &mut field);
                ok &= field
                    .iter()
                    .enumerate()
                    .all(|(e, &v)| v == (sub.el_l2g[e] as f64) + 1000.0 * round as f64);
            }
            ok
        });
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    fn four_rank_quadrant_exchange() {
        let m = generate_rect(&RectSpec::unit_square(8), |_| 0).unwrap();
        let owner: Vec<usize> = (0..m.n_elements())
            .map(|e| {
                let i = e % 8;
                let j = e / 8;
                usize::from(i >= 4) + 2 * usize::from(j >= 4)
            })
            .collect();
        let subs = SubMeshPlan::build(&m, &owner, 4).unwrap();
        let out = Typhon::run(4, |ctx| {
            let sub = &subs[ctx.rank()];
            let mut field: Vec<f64> = (0..sub.mesh.n_elements())
                .map(|e| {
                    if sub.owns_element(e) {
                        sub.el_l2g[e] as f64
                    } else {
                        -1.0
                    }
                })
                .collect();
            exchange_scalar(ctx, &sub.el_exchange, &mut field);
            field
                .iter()
                .enumerate()
                .all(|(e, &v)| v == sub.el_l2g[e] as f64)
        })
        .unwrap();
        assert!(out.into_iter().all(|ok| ok));
    }
}
