//! Legacy single-field halo primitives.
//!
//! A [`bookleaf_mesh::SubMesh`] carries, per neighbouring rank, matched
//! send/recv index lists (sorted by global id on both sides). The
//! functions here pack **one** field along the send lists, post all
//! sends, then receive and unpack — the non-blocking-send /
//! blocking-receive pattern Typhon uses over MPI.
//!
//! The production exchange path is the phase-aggregated [`crate::plan`]
//! (one packed message per neighbour *per phase*, not per field); these
//! primitives remain for decks and tests that move a single field ad
//! hoc. They are thin wrappers over the plan's packing machinery and
//! draw payload buffers from the [`RankCtx`] recycle pool, so even
//! flat-MPI code that bypasses the plan does not churn the allocator.

use bookleaf_mesh::submesh::ExchangeList;
use bookleaf_util::{CommError, Vec2};

use crate::plan::{pack, unpack, FieldMut};
use crate::runtime::RankCtx;

/// Exchange one field along `schedule`: a single message per neighbour
/// containing just this field.
fn exchange_single(
    ctx: &RankCtx,
    schedule: &[ExchangeList],
    field: &mut FieldMut<'_>,
) -> Result<(), CommError> {
    let width = field.kind().width();
    let tag = ctx.next_tag();
    for ex in schedule {
        let mut buf = ctx.take_buffer(ex.send.len() * width);
        pack(&mut buf, &ex.send, field);
        ctx.send(ex.rank, tag, buf)?;
    }
    for ex in schedule {
        let payload = ctx.recv(ex.rank, tag)?;
        if payload.len() != ex.recv.len() * width {
            return Err(CommError::Malformed {
                from: ex.rank,
                tag,
                expected: ex.recv.len() * width,
                got: payload.len(),
            });
        }
        unpack(&payload, &ex.recv, field);
        ctx.recycle_buffer(payload);
    }
    Ok(())
}

/// Exchange a per-entity scalar field (element- or node-indexed,
/// depending on which schedule is passed). After the call, every `recv`
/// position holds the owner's value.
///
/// # Errors
///
/// A [`CommError`] from the underlying send/receive (dead peer,
/// timeout, checksum failure, or a payload of the wrong shape).
pub fn exchange_scalar(
    ctx: &RankCtx,
    schedule: &[ExchangeList],
    field: &mut [f64],
) -> Result<(), CommError> {
    exchange_single(ctx, schedule, &mut FieldMut::Scalar(field))
}

/// Exchange a per-entity [`Vec2`] field (positions, velocities).
///
/// # Errors
///
/// As [`exchange_scalar`].
pub fn exchange_vec2(
    ctx: &RankCtx,
    schedule: &[ExchangeList],
    field: &mut [Vec2],
) -> Result<(), CommError> {
    exchange_single(ctx, schedule, &mut FieldMut::Vec2(field))
}

/// Exchange a per-element-corner field (corner masses, corner force
/// components): four doubles per schedule entry.
///
/// # Errors
///
/// As [`exchange_scalar`].
pub fn exchange_corner(
    ctx: &RankCtx,
    schedule: &[ExchangeList],
    field: &mut [[f64; 4]],
) -> Result<(), CommError> {
    exchange_single(ctx, schedule, &mut FieldMut::Corner4(field))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Typhon;
    use bookleaf_mesh::{generate_rect, RectSpec, SubMeshPlan};

    /// Build a 6x6 grid split into two vertical stripes and run `f` on
    /// both ranks with their submeshes.
    fn with_two_ranks<R: Send>(
        f: impl Fn(&RankCtx, &bookleaf_mesh::SubMesh) -> R + Sync,
    ) -> Vec<R> {
        let m = generate_rect(&RectSpec::unit_square(6), |_| 0).unwrap();
        let owner: Vec<usize> = (0..m.n_elements())
            .map(|e| usize::from(e % 6 >= 3))
            .collect();
        let subs = SubMeshPlan::build(&m, &owner, 2).unwrap();
        Typhon::run(2, |ctx| f(ctx, &subs[ctx.rank()])).unwrap()
    }

    #[test]
    fn scalar_halo_receives_owner_values() {
        let out = with_two_ranks(|ctx, sub| {
            // Field = global element id for owned, -1 for ghosts.
            let mut field: Vec<f64> = (0..sub.mesh.n_elements())
                .map(|e| {
                    if sub.owns_element(e) {
                        sub.el_l2g[e] as f64
                    } else {
                        -1.0
                    }
                })
                .collect();
            exchange_scalar(ctx, &sub.el_exchange, &mut field).unwrap();
            // After exchange every ghost must hold its global id.
            field
                .iter()
                .enumerate()
                .all(|(e, &v)| v == sub.el_l2g[e] as f64)
        });
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    fn vec2_node_halo() {
        let out = with_two_ranks(|ctx, sub| {
            let mut field: Vec<Vec2> = (0..sub.mesh.n_nodes())
                .map(|n| {
                    if sub.owns_node(n) {
                        let g = sub.nd_l2g[n] as f64;
                        Vec2::new(g, 2.0 * g)
                    } else {
                        Vec2::new(-1.0, -1.0)
                    }
                })
                .collect();
            exchange_vec2(ctx, &sub.nd_exchange, &mut field).unwrap();
            field.iter().enumerate().all(|(n, v)| {
                let g = sub.nd_l2g[n] as f64;
                *v == Vec2::new(g, 2.0 * g)
            })
        });
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    fn corner_halo() {
        let out = with_two_ranks(|ctx, sub| {
            let mut field: Vec<[f64; 4]> = (0..sub.mesh.n_elements())
                .map(|e| {
                    if sub.owns_element(e) {
                        let g = sub.el_l2g[e] as f64;
                        [g, g + 0.25, g + 0.5, g + 0.75]
                    } else {
                        [f64::NAN; 4]
                    }
                })
                .collect();
            exchange_corner(ctx, &sub.el_exchange, &mut field).unwrap();
            field.iter().enumerate().all(|(e, cf)| {
                let g = sub.el_l2g[e] as f64;
                cf[0] == g && cf[3] == g + 0.75
            })
        });
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    fn repeated_exchanges_stay_matched() {
        // Ten successive scalar exchanges must not cross tags.
        let out = with_two_ranks(|ctx, sub| {
            let mut ok = true;
            for round in 0..10 {
                let mut field: Vec<f64> = (0..sub.mesh.n_elements())
                    .map(|e| {
                        if sub.owns_element(e) {
                            (sub.el_l2g[e] as f64) + 1000.0 * round as f64
                        } else {
                            -1.0
                        }
                    })
                    .collect();
                exchange_scalar(ctx, &sub.el_exchange, &mut field).unwrap();
                ok &= field
                    .iter()
                    .enumerate()
                    .all(|(e, &v)| v == (sub.el_l2g[e] as f64) + 1000.0 * round as f64);
            }
            ok
        });
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    fn four_rank_quadrant_exchange() {
        let m = generate_rect(&RectSpec::unit_square(8), |_| 0).unwrap();
        let owner: Vec<usize> = (0..m.n_elements())
            .map(|e| {
                let i = e % 8;
                let j = e / 8;
                usize::from(i >= 4) + 2 * usize::from(j >= 4)
            })
            .collect();
        let subs = SubMeshPlan::build(&m, &owner, 4).unwrap();
        let out = Typhon::run(4, |ctx| {
            let sub = &subs[ctx.rank()];
            let mut field: Vec<f64> = (0..sub.mesh.n_elements())
                .map(|e| {
                    if sub.owns_element(e) {
                        sub.el_l2g[e] as f64
                    } else {
                        -1.0
                    }
                })
                .collect();
            exchange_scalar(ctx, &sub.el_exchange, &mut field).unwrap();
            field
                .iter()
                .enumerate()
                .all(|(e, &v)| v == sub.el_l2g[e] as f64)
        })
        .unwrap();
        assert!(out.into_iter().all(|ok| ok));
    }
}
