//! Deterministic fault injection for the rank team.
//!
//! A [`FaultPlan`] is a *schedule*: a pure function of
//! `(attempt, step, rank)` deciding whether a fault fires at that point.
//! It reads no clock and no RNG-of-the-day — two runs of the same plan
//! inject byte-identical faults, which is what lets the CI fault matrix
//! assert that two recovery logs match exactly.
//!
//! Faults act at the communication layer (see [`crate::runtime`]):
//!
//! * [`FaultKind::Corrupt`] — the rank's next outgoing payload is
//!   bit-flipped *after* its checksum is computed, so the receiver's
//!   verification fails with `CommError::Corrupt`;
//! * [`FaultKind::Drop`] — the rank's next outgoing message is consumed
//!   and never delivered; the receiver's deadline expires with
//!   `CommError::RecvTimeout`;
//! * [`FaultKind::Delay`] — the rank's next send is held back for a
//!   short, seed-derived (but bounded and deterministic-in-duration)
//!   time. A delay alone never fails a run; it exercises the overlap
//!   and timeout machinery;
//! * [`FaultKind::Kill`] — the rank dies at the top of the scheduled
//!   step: [`crate::RankCtx::begin_step`] returns `CommError::Killed`,
//!   and every later communication attempt on that rank does too. Peers
//!   observe the death as `RecvTimeout` / `CollectiveTimeout` /
//!   `RankUnreachable` — bounded, typed, never a hang.
//!
//! Point faults (`Corrupt`/`Drop`/`Delay`) are *one-shot per schedule
//! entry*: armed when the rank enters the scheduled step, consumed by
//! that rank's next send. Entries are scoped to a recovery `attempt`
//! (default `0`), so a supervised re-run after rewinding to a checkpoint
//! does not re-trip the same deterministic fault forever.

/// What a scheduled fault does to the communication stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip a bit in the next outgoing payload after checksumming.
    Corrupt,
    /// Swallow the next outgoing message.
    Drop,
    /// Hold the next outgoing message back briefly.
    Delay,
    /// Terminate the rank at the top of the scheduled step.
    Kill,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::Corrupt => "corrupt",
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Kill => "kill",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for FaultKind {
    type Err = String;

    /// Parse the exact lowercase names `Display` renders — the wire
    /// spelling `bookleaf serve` accepts in its `X-Fault-Inject`
    /// header and the fault-matrix sweep passes on the command line.
    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "corrupt" => Ok(FaultKind::Corrupt),
            "drop" => Ok(FaultKind::Drop),
            "delay" => Ok(FaultKind::Delay),
            "kill" => Ok(FaultKind::Kill),
            other => Err(format!(
                "unknown fault kind {other:?} (expected corrupt|drop|delay|kill)"
            )),
        }
    }
}

/// One scheduled fault: fires for `rank` at the top of `step`, on
/// recovery attempt `attempt` only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEntry {
    /// Recovery attempt this entry belongs to (`0` = the first run).
    pub attempt: usize,
    /// Simulation step (as announced via `RankCtx::begin_step`).
    pub step: usize,
    /// The rank the fault acts on.
    pub rank: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic fault schedule. See the module docs for semantics.
///
/// Built either from explicit entries (the builder methods) or derived
/// from a seed with [`FaultPlan::seeded`]; both are pure data, cheap to
/// clone, and shared read-only by every rank of a team.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    entries: Vec<FaultEntry>,
}

/// SplitMix64: the standard 64-bit finalizer, used to derive per-entry
/// jitter (delay durations) and seeded schedules. Pure and portable.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (injects nothing). The seed feeds delay-duration
    /// derivation for any `Delay` entries added later.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            entries: Vec::new(),
        }
    }

    /// A pseudo-random schedule: for every `(step, rank)` in
    /// `0..n_steps × 0..n_ranks`, a fault of `kind` fires with
    /// probability `rate_percent`/100, decided by a pure hash of
    /// `(seed, step, rank)`. Attempt 0 only.
    #[must_use]
    pub fn seeded(
        seed: u64,
        n_steps: usize,
        n_ranks: usize,
        kind: FaultKind,
        rate_percent: u64,
    ) -> Self {
        let mut plan = FaultPlan::new(seed);
        for step in 0..n_steps {
            for rank in 0..n_ranks {
                let h = splitmix64(seed ^ (step as u64) << 20 ^ rank as u64);
                if h % 100 < rate_percent {
                    plan.entries.push(FaultEntry {
                        attempt: 0,
                        step,
                        rank,
                        kind,
                    });
                }
            }
        }
        plan
    }

    /// Schedule `kind` for `rank` at `step`, attempt 0.
    #[must_use]
    pub fn with(mut self, kind: FaultKind, step: usize, rank: usize) -> Self {
        self.entries.push(FaultEntry {
            attempt: 0,
            step,
            rank,
            kind,
        });
        self
    }

    /// Re-scope the most recently added entry to a recovery attempt.
    ///
    /// # Panics
    ///
    /// If the plan has no entries yet.
    #[must_use]
    pub fn on_attempt(mut self, attempt: usize) -> Self {
        self.entries
            .last_mut()
            .expect("on_attempt needs a preceding entry")
            .attempt = attempt;
        self
    }

    /// Shorthand: corrupt `rank`'s next payload at `step`.
    #[must_use]
    pub fn corrupt(self, step: usize, rank: usize) -> Self {
        self.with(FaultKind::Corrupt, step, rank)
    }

    /// Shorthand: drop `rank`'s next message at `step`.
    #[must_use]
    pub fn drop_message(self, step: usize, rank: usize) -> Self {
        self.with(FaultKind::Drop, step, rank)
    }

    /// Shorthand: delay `rank`'s next send at `step`.
    #[must_use]
    pub fn delay(self, step: usize, rank: usize) -> Self {
        self.with(FaultKind::Delay, step, rank)
    }

    /// Shorthand: kill `rank` at the top of `step`.
    #[must_use]
    pub fn kill(self, step: usize, rank: usize) -> Self {
        self.with(FaultKind::Kill, step, rank)
    }

    /// True when the plan schedules nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The scheduled entries, in insertion order.
    #[must_use]
    pub fn entries(&self) -> &[FaultEntry] {
        &self.entries
    }

    /// The fault (if any) scheduled for `(attempt, step, rank)`. A kill
    /// wins over point faults scheduled at the same spot.
    #[must_use]
    pub fn action(&self, attempt: usize, step: usize, rank: usize) -> Option<FaultKind> {
        let mut hit = None;
        for e in &self.entries {
            if e.attempt == attempt && e.step == step && e.rank == rank {
                if e.kind == FaultKind::Kill {
                    return Some(FaultKind::Kill);
                }
                hit = Some(e.kind);
            }
        }
        hit
    }

    /// Deterministic delay duration for a `Delay` fault at
    /// `(attempt, step, rank)`: 1–16 ms derived from the seed. Bounded
    /// well below any sane receive timeout, so a delay alone never
    /// converts into a failure.
    #[must_use]
    pub fn delay_for(&self, attempt: usize, step: usize, rank: usize) -> std::time::Duration {
        let h = splitmix64(self.seed ^ (attempt as u64) << 40 ^ (step as u64) << 20 ^ rank as u64);
        std::time::Duration::from_millis(1 + h % 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_kind_round_trips_through_display_and_from_str() {
        for kind in [
            FaultKind::Corrupt,
            FaultKind::Drop,
            FaultKind::Delay,
            FaultKind::Kill,
        ] {
            assert_eq!(kind.to_string().parse::<FaultKind>(), Ok(kind));
        }
        assert!("nuke".parse::<FaultKind>().is_err());
        assert!(
            "Kill".parse::<FaultKind>().is_err(),
            "wire spelling is exact lowercase"
        );
    }

    #[test]
    fn plan_is_a_pure_function_of_its_inputs() {
        let a = FaultPlan::new(7).corrupt(3, 1).kill(9, 0);
        let b = FaultPlan::new(7).corrupt(3, 1).kill(9, 0);
        assert_eq!(a, b);
        assert_eq!(a.action(0, 3, 1), Some(FaultKind::Corrupt));
        assert_eq!(b.action(0, 3, 1), Some(FaultKind::Corrupt));
        assert_eq!(a.action(0, 9, 0), Some(FaultKind::Kill));
        assert_eq!(a.action(0, 9, 1), None);
        assert_eq!(a.action(1, 3, 1), None, "attempt 1 sees no attempt-0 fault");
    }

    #[test]
    fn attempt_scoping_retargets_the_last_entry() {
        let p = FaultPlan::new(0).drop_message(5, 2).on_attempt(1);
        assert_eq!(p.action(0, 5, 2), None);
        assert_eq!(p.action(1, 5, 2), Some(FaultKind::Drop));
    }

    #[test]
    fn kill_wins_over_point_faults_at_the_same_spot() {
        let p = FaultPlan::new(0).corrupt(4, 1).kill(4, 1);
        assert_eq!(p.action(0, 4, 1), Some(FaultKind::Kill));
        let p = FaultPlan::new(0).kill(4, 1).corrupt(4, 1);
        assert_eq!(p.action(0, 4, 1), Some(FaultKind::Kill));
    }

    #[test]
    fn seeded_schedule_is_reproducible_and_rate_bounded() {
        let a = FaultPlan::seeded(42, 100, 4, FaultKind::Drop, 10);
        let b = FaultPlan::seeded(42, 100, 4, FaultKind::Drop, 10);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(43, 100, 4, FaultKind::Drop, 10);
        assert_ne!(a, c, "different seeds should differ");
        // 400 slots at 10%: expect roughly 40, certainly not 0 or 400.
        let n = a.entries().len();
        assert!(n > 5 && n < 150, "implausible seeded fault count {n}");
    }

    #[test]
    fn delay_durations_are_deterministic_and_bounded() {
        let p = FaultPlan::new(123).delay(2, 0);
        let d1 = p.delay_for(0, 2, 0);
        let d2 = p.delay_for(0, 2, 0);
        assert_eq!(d1, d2);
        assert!(d1 >= std::time::Duration::from_millis(1));
        assert!(d1 <= std::time::Duration::from_millis(17));
    }
}
