//! # bookleaf-typhon
//!
//! **Typhon** is BookLeaf's distributed communication library for
//! unstructured mesh applications: halo exchanges between neighbouring
//! partitions and global reductions, implemented in the reference code on
//! top of MPI.
//!
//! This Rust port reproduces Typhon's semantics on a single machine: each
//! "MPI rank" is an OS thread owning a disjoint mesh partition, and
//! point-to-point messages travel over `crossbeam` channels. The
//! *communication structure* — who sends what to whom, and when — is
//! identical to the MPI original; only the transport differs (see
//! DESIGN.md §3, substitution 1). Multi-node wire costs are recovered by
//! the `bookleaf-device` cluster model.
//!
//! ## Pieces
//!
//! * [`runtime`] — the rank team: spawn N rank threads, point-to-point
//!   send/recv with tag matching, barriers and global min/sum reductions,
//!   plus a per-rank payload-buffer recycle pool;
//! * [`plan`] — the phase-aggregated exchange plan: register typed field
//!   slots per phase once, then move each phase as **one** packed message
//!   per neighbour, with per-phase traffic accounting;
//! * [`exchange`] — the legacy single-field halo primitives (scalar,
//!   vector, per-corner) over a [`bookleaf_mesh::SubMesh`], thin wrappers
//!   over the plan's packing machinery;
//! * [`stats`] — per-rank communication counters (messages, doubles
//!   moved, per-phase breakdowns) consumed by the performance models;
//! * [`fault`] — deterministic fault injection: a seeded [`FaultPlan`]
//!   schedule that corrupts, drops, delays or kills at precise
//!   `(attempt, step, rank)` points, every failure surfacing as a typed
//!   `CommError` within one bounded timeout window.

pub mod exchange;
pub mod fault;
pub mod plan;
pub mod runtime;
pub mod stats;

pub use exchange::{exchange_corner, exchange_scalar, exchange_vec2};
pub use fault::{FaultEntry, FaultKind, FaultPlan};
pub use plan::{Entity, FieldMut, HaloPlan, HaloPlanBuilder, PendingPhase, PhaseId, SlotKind};
pub use runtime::{RankCtx, Typhon, TyphonOptions};
pub use stats::{CommStats, PhaseStats};
