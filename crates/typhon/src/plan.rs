//! Phase-aggregated halo exchange: one message per neighbour per phase.
//!
//! The reference Typhon registers every quantity a communication *phase*
//! needs up front and then moves the whole phase in a single packed
//! buffer per neighbouring process — the cluster cost model (see
//! [`crate::stats`]) charges per message as well as per byte, so message
//! count is a first-order term. The naive port sent one tagged message
//! per field (6 before viscosity, 3 before acceleration, 7 after an ALE
//! remap); a [`HaloPlan`] collapses each phase to exactly **one** send
//! and **one** receive per neighbour link.
//!
//! ## Packed-buffer layout
//!
//! A plan is built once per rank from the submesh's element and node
//! [`ExchangeList`]s. Phases are registered with
//! [`HaloPlanBuilder::phase`] as an ordered list of typed *slots*:
//!
//! | [`SlotKind`]  | entity payload        | doubles per entry |
//! |---------------|-----------------------|-------------------|
//! | `Scalar`      | `f64`                 | 1                 |
//! | `Vec2`        | [`Vec2`]              | 2 (`x`, `y`)      |
//! | `Corner4`     | `[f64; 4]`            | 4 (corner order)  |
//! | `CornerVec2`  | `[Vec2; 4]`           | 8 (`x`,`y` × 4)   |
//!
//! The send buffer for neighbour `r` in a phase is the concatenation of
//! the registered slots **in registration order**; within a slot,
//! entries follow the schedule's index list, which both ends keep sorted
//! by global id. Because every rank registers the same phases with the
//! same slot order (the plan is built by the same code path on all
//! ranks), sender and receiver agree on the layout without exchanging
//! any metadata; per-neighbour, per-slot offsets are precomputed at
//! build time so unpacking indexes straight into the received payload.
//!
//! Ranks whose element or node lists are empty in one direction still
//! exchange one (possibly empty) message per phase — that keeps the
//! invariant `messages_sent == phase executions × neighbour links`
//! exact, which the accounting tests and the cost model rely on.
//!
//! Payload buffers come from the [`RankCtx`] recycle pool and are
//! returned to it after unpacking, so steady-state stepping performs no
//! allocation in the exchange path.
//!
//! ## Split-phase execution (communication/computation overlap)
//!
//! [`HaloPlan::execute`] is sugar for the two-step protocol:
//!
//! 1. [`HaloPlan::post`] packs every slot and sends one message per
//!    neighbour immediately, returning a [`PendingPhase`] ticket;
//! 2. [`HaloPlan::complete`] receives and unpacks one message per
//!    neighbour, consuming the ticket.
//!
//! Between the two calls the caller is free to compute anything that
//! does not *read* an entity in a recv list of the phase (interior
//! work) — the messages are in flight meanwhile, and any time the
//! peers' payloads are late shows up as `recv_wait_seconds` in the
//! phase's [`crate::PhaseStats`] instead of stalling useful work. The
//! wall time the ticket stayed open is recorded as
//! `overlap_window_seconds`. Posts consume a tag exactly like
//! `execute`, so every rank must issue its posts in the same global
//! order; completes may drain in any order (out-of-order payloads park
//! in the mailbox).

use std::time::Instant;

use bookleaf_mesh::submesh::ExchangeList;
use bookleaf_util::{CommError, Vec2};

use crate::runtime::RankCtx;

/// Which local index space a slot's field lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Entity {
    /// Element-indexed (uses the element exchange schedule).
    Element,
    /// Node-indexed (uses the node exchange schedule).
    Node,
}

/// The shape of one registered field slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// One double per entry.
    Scalar,
    /// A [`Vec2`] per entry.
    Vec2,
    /// Four doubles per entry (per-corner element data).
    Corner4,
    /// Four [`Vec2`]s per entry (per-corner vector data, e.g. corner
    /// forces) — packed natively, no component scratch arrays needed.
    CornerVec2,
}

impl SlotKind {
    /// Doubles per schedule entry.
    #[must_use]
    pub fn width(self) -> usize {
        match self {
            SlotKind::Scalar => 1,
            SlotKind::Vec2 => 2,
            SlotKind::Corner4 => 4,
            SlotKind::CornerVec2 => 8,
        }
    }
}

/// A mutable field bound to a slot at execution time.
pub enum FieldMut<'a> {
    /// Binds a [`SlotKind::Scalar`] slot.
    Scalar(&'a mut [f64]),
    /// Binds a [`SlotKind::Vec2`] slot.
    Vec2(&'a mut [Vec2]),
    /// Binds a [`SlotKind::Corner4`] slot.
    Corner4(&'a mut [[f64; 4]]),
    /// Binds a [`SlotKind::CornerVec2`] slot.
    CornerVec2(&'a mut [[Vec2; 4]]),
    /// Binds a [`SlotKind::CornerVec2`] slot from a *pair* of SoA
    /// component rows (x, y) — the corner-force layout `HydroState`
    /// uses. The wire format is byte-identical to
    /// [`FieldMut::CornerVec2`]: per entry, `(x, y)` interleaved corner
    /// by corner.
    CornerPair(&'a mut [[f64; 4]], &'a mut [[f64; 4]]),
}

impl FieldMut<'_> {
    /// The [`SlotKind`] this binding satisfies.
    #[must_use]
    pub fn kind(&self) -> SlotKind {
        match self {
            FieldMut::Scalar(_) => SlotKind::Scalar,
            FieldMut::Vec2(_) => SlotKind::Vec2,
            FieldMut::Corner4(_) => SlotKind::Corner4,
            FieldMut::CornerVec2(_) | FieldMut::CornerPair(..) => SlotKind::CornerVec2,
        }
    }

    /// Entries in the bound slice.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            FieldMut::Scalar(f) => f.len(),
            FieldMut::Vec2(f) => f.len(),
            FieldMut::Corner4(f) => f.len(),
            FieldMut::CornerVec2(f) => f.len(),
            FieldMut::CornerPair(fx, fy) => fx.len().min(fy.len()),
        }
    }

    /// True when the bound slice is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Handle for a registered phase (index into the plan's phase table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseId(usize);

/// One neighbour link: the element and node index lists agreed with one
/// peer rank. Lists are owned copies so the plan has no lifetime
/// coupling to the submesh.
#[derive(Debug, Clone)]
struct Link {
    rank: usize,
    el_send: Vec<u32>,
    el_recv: Vec<u32>,
    nd_send: Vec<u32>,
    nd_recv: Vec<u32>,
}

impl Link {
    fn send_list(&self, entity: Entity) -> &[u32] {
        match entity {
            Entity::Element => &self.el_send,
            Entity::Node => &self.nd_send,
        }
    }

    fn recv_list(&self, entity: Entity) -> &[u32] {
        match entity {
            Entity::Element => &self.el_recv,
            Entity::Node => &self.nd_recv,
        }
    }
}

/// Precomputed buffer layout of one phase on one link.
#[derive(Debug, Clone)]
struct LinkLayout {
    /// Total doubles this rank packs for the link.
    send_total: usize,
    /// Total doubles this rank expects from the link.
    recv_total: usize,
    /// Per-slot start offsets into the received payload.
    recv_off: Vec<usize>,
}

#[derive(Debug, Clone)]
struct PhasePlan {
    name: &'static str,
    slots: Vec<(Entity, SlotKind)>,
    /// Parallel to [`HaloPlan::links`].
    layouts: Vec<LinkLayout>,
}

/// Registers phases against a pair of exchange schedules, then
/// [`HaloPlanBuilder::build`]s the immutable [`HaloPlan`].
#[derive(Debug)]
pub struct HaloPlanBuilder {
    links: Vec<Link>,
    phases: Vec<(&'static str, Vec<(Entity, SlotKind)>)>,
}

impl HaloPlanBuilder {
    /// Start a plan over a submesh's element and node schedules. The
    /// neighbour set is the union of both schedules' peer ranks, sorted
    /// ascending (identical on every rank by construction) — computed by
    /// [`bookleaf_mesh::neighbour_union`], the same helper
    /// `SubMesh::neighbour_ranks` uses, so the plan's link set cannot
    /// drift from the mesh layer's.
    #[must_use]
    pub fn new(el: &[ExchangeList], nd: &[ExchangeList]) -> Self {
        let links = bookleaf_mesh::neighbour_union(el, nd)
            .into_iter()
            .map(|rank| {
                let e = el.iter().find(|x| x.rank == rank);
                let n = nd.iter().find(|x| x.rank == rank);
                Link {
                    rank,
                    el_send: e.map(|x| x.send.clone()).unwrap_or_default(),
                    el_recv: e.map(|x| x.recv.clone()).unwrap_or_default(),
                    nd_send: n.map(|x| x.send.clone()).unwrap_or_default(),
                    nd_recv: n.map(|x| x.recv.clone()).unwrap_or_default(),
                }
            })
            .collect();
        HaloPlanBuilder {
            links,
            phases: Vec::new(),
        }
    }

    /// Register a phase: an ordered list of `(entity, kind)` slots.
    /// Every rank must register the same phases in the same order with
    /// the same slots — that shared registration *is* the wire format.
    pub fn phase(&mut self, name: &'static str, slots: &[(Entity, SlotKind)]) -> PhaseId {
        self.phases.push((name, slots.to_vec()));
        PhaseId(self.phases.len() - 1)
    }

    /// Freeze registration and precompute every per-link buffer layout.
    #[must_use]
    pub fn build(self) -> HaloPlan {
        // Minimum field length per entity: the largest local index any
        // schedule touches, +1. Lets execute() reject a field bound to
        // the wrong index space (or simply too short) with a diagnostic
        // instead of shipping garbage or panicking deep in pack().
        let min_len = |lists: fn(&Link) -> [&[u32]; 2]| {
            self.links
                .iter()
                .flat_map(|l| lists(l).into_iter().flatten())
                .map(|&i| i as usize + 1)
                .max()
                .unwrap_or(0)
        };
        let el_min_len = min_len(|l| [&l.el_send, &l.el_recv]);
        let nd_min_len = min_len(|l| [&l.nd_send, &l.nd_recv]);
        let phases = self
            .phases
            .into_iter()
            .map(|(name, slots)| {
                let layouts = self
                    .links
                    .iter()
                    .map(|link| {
                        let mut send_total = 0;
                        let mut recv_total = 0;
                        let mut recv_off = Vec::with_capacity(slots.len());
                        for &(entity, kind) in &slots {
                            send_total += link.send_list(entity).len() * kind.width();
                            recv_off.push(recv_total);
                            recv_total += link.recv_list(entity).len() * kind.width();
                        }
                        LinkLayout {
                            send_total,
                            recv_total,
                            recv_off,
                        }
                    })
                    .collect();
                PhasePlan {
                    name,
                    slots,
                    layouts,
                }
            })
            .collect();
        HaloPlan {
            links: self.links,
            phases,
            el_min_len,
            nd_min_len,
        }
    }
}

/// The frozen exchange plan of one rank: neighbour links, registered
/// phases, and their precomputed packed-buffer layouts. See the module
/// docs for the wire format.
#[derive(Debug)]
pub struct HaloPlan {
    links: Vec<Link>,
    phases: Vec<PhasePlan>,
    /// Minimum length an element-indexed field must have (largest
    /// element index any schedule touches, +1).
    el_min_len: usize,
    /// Minimum length a node-indexed field must have.
    nd_min_len: usize,
}

impl HaloPlan {
    /// Number of neighbour links (= messages sent per phase execution).
    #[must_use]
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Peer ranks of this plan's links, ascending.
    #[must_use]
    pub fn link_ranks(&self) -> Vec<usize> {
        self.links.iter().map(|l| l.rank).collect()
    }

    /// The registered name of `phase`.
    #[must_use]
    pub fn phase_name(&self, phase: PhaseId) -> &'static str {
        self.phases[phase.0].name
    }

    /// Doubles this rank sends per execution of `phase` (all links).
    #[must_use]
    pub fn doubles_per_execution(&self, phase: PhaseId) -> usize {
        self.phases[phase.0]
            .layouts
            .iter()
            .map(|l| l.send_total)
            .sum()
    }

    /// Check `fields` against the phase registration (count, kind, and
    /// index-space length).
    fn validate_fields(&self, ph: &PhasePlan, fields: &[FieldMut<'_>]) {
        assert_eq!(
            fields.len(),
            ph.slots.len(),
            "phase {:?}: {} fields bound to {} registered slots",
            ph.name,
            fields.len(),
            ph.slots.len()
        );
        for (i, (field, &(entity, kind))) in fields.iter().zip(&ph.slots).enumerate() {
            assert_eq!(
                field.kind(),
                kind,
                "phase {:?}: slot {i} bound to a {:?} field but registered as {kind:?}",
                ph.name,
                field.kind()
            );
            let need = match entity {
                Entity::Element => self.el_min_len,
                Entity::Node => self.nd_min_len,
            };
            assert!(
                field.len() >= need,
                "phase {:?}: slot {i} ({entity:?}) bound to a field of length {} \
                 but the schedules index up to {need} — wrong index space?",
                ph.name,
                field.len()
            );
        }
    }

    /// Pack every registered slot from `fields` and send one buffer per
    /// neighbour link immediately, without waiting for anything. The
    /// returned [`PendingPhase`] ticket must be handed to
    /// [`HaloPlan::complete`] (with the same fields) before the next
    /// use of any recv-list entity.
    ///
    /// Consumes one tag; every rank must post its phases in the same
    /// global order.
    ///
    /// # Errors
    ///
    /// A [`CommError`] when a send cannot be delivered (dead peer, or
    /// this rank's own scheduled kill has fired).
    ///
    /// # Panics
    ///
    /// If `fields` disagrees with the phase registration.
    pub fn post(
        &self,
        ctx: &RankCtx,
        phase: PhaseId,
        fields: &[FieldMut<'_>],
    ) -> std::result::Result<PendingPhase, CommError> {
        let ph = &self.phases[phase.0];
        self.validate_fields(ph, fields);
        let tag = ctx.next_tag();
        for (link, layout) in self.links.iter().zip(&ph.layouts) {
            let mut buf = ctx.take_buffer(layout.send_total);
            for (field, &(entity, _)) in fields.iter().zip(&ph.slots) {
                pack(&mut buf, link.send_list(entity), field);
            }
            debug_assert_eq!(buf.len(), layout.send_total);
            ctx.send_in_phase(link.rank, tag, buf, ph.name)?;
        }
        Ok(PendingPhase {
            phase,
            tag,
            posted: Instant::now(),
        })
    }

    /// Receive and unpack one buffer per neighbour link for a phase
    /// posted earlier, consuming its ticket. Blocked time is attributed
    /// to the phase's `recv_wait_seconds`; the time the ticket stayed
    /// open is recorded as its `overlap_window_seconds`.
    ///
    /// # Errors
    ///
    /// A [`CommError`] when a receive times out, a payload fails its
    /// checksum, or a received payload has the wrong length for the
    /// phase layout ([`CommError::Malformed`] — peer plan mismatch).
    ///
    /// # Panics
    ///
    /// If `fields` disagrees with the phase registration.
    pub fn complete(
        &self,
        ctx: &RankCtx,
        pending: PendingPhase,
        fields: &mut [FieldMut<'_>],
    ) -> std::result::Result<(), CommError> {
        let ph = &self.phases[pending.phase.0];
        self.validate_fields(ph, fields);
        if !self.links.is_empty() {
            ctx.record_overlap_window(ph.name, pending.posted.elapsed().as_secs_f64());
        }
        for (link, layout) in self.links.iter().zip(&ph.layouts) {
            let payload = ctx.recv_in_phase(link.rank, pending.tag, ph.name)?;
            if payload.len() != layout.recv_total {
                return Err(CommError::Malformed {
                    from: link.rank,
                    tag: pending.tag,
                    expected: layout.recv_total,
                    got: payload.len(),
                });
            }
            for ((field, &(entity, _)), &off) in
                fields.iter_mut().zip(&ph.slots).zip(&layout.recv_off)
            {
                unpack(&payload[off..], link.recv_list(entity), field);
            }
            ctx.recycle_buffer(payload);
        }
        Ok(())
    }

    /// Execute `phase`: pack every registered slot from `fields` into
    /// one buffer per neighbour, post all sends, then receive and unpack
    /// one buffer per neighbour. Equivalent to [`HaloPlan::post`]
    /// followed immediately by [`HaloPlan::complete`] (a zero-width
    /// overlap window).
    ///
    /// `fields` must match the phase's registered slots in order and
    /// kind (checked). Like the legacy primitives, all ranks must
    /// execute their phases in the same global order so tags match.
    ///
    /// # Errors
    ///
    /// A [`CommError`] from either half of the exchange (see
    /// [`HaloPlan::post`] and [`HaloPlan::complete`]).
    ///
    /// # Panics
    ///
    /// If `fields` disagrees with the phase registration.
    pub fn execute(
        &self,
        ctx: &RankCtx,
        phase: PhaseId,
        fields: &mut [FieldMut<'_>],
    ) -> std::result::Result<(), CommError> {
        let pending = self.post(ctx, phase, fields)?;
        self.complete(ctx, pending, fields)
    }
}

/// Ticket for a posted-but-not-completed phase execution: proof that the
/// sends are in flight and a reminder that the receives still have to be
/// drained. Not `Clone` — each post is completed exactly once.
#[must_use = "a posted phase must be completed, or its receives are never drained"]
#[derive(Debug)]
pub struct PendingPhase {
    phase: PhaseId,
    tag: u64,
    /// When the sends were posted (for the overlap-window attribution).
    posted: Instant,
}

impl PendingPhase {
    /// The phase this ticket belongs to.
    #[must_use]
    pub fn phase(&self) -> PhaseId {
        self.phase
    }
}

/// Append `field`'s entries along `idx` to `buf`.
pub(crate) fn pack(buf: &mut Vec<f64>, idx: &[u32], field: &FieldMut<'_>) {
    match field {
        FieldMut::Scalar(f) => {
            buf.extend(idx.iter().map(|&l| f[l as usize]));
        }
        FieldMut::Vec2(f) => {
            for &l in idx {
                let v = f[l as usize];
                buf.push(v.x);
                buf.push(v.y);
            }
        }
        FieldMut::Corner4(f) => {
            for &l in idx {
                buf.extend_from_slice(&f[l as usize]);
            }
        }
        FieldMut::CornerVec2(f) => {
            for &l in idx {
                for v in &f[l as usize] {
                    buf.push(v.x);
                    buf.push(v.y);
                }
            }
        }
        FieldMut::CornerPair(fx, fy) => {
            // Same wire order as CornerVec2: (x, y) per corner.
            for &l in idx {
                let (rx, ry) = (&fx[l as usize], &fy[l as usize]);
                for c in 0..4 {
                    buf.push(rx[c]);
                    buf.push(ry[c]);
                }
            }
        }
    }
}

/// Scatter `payload` (starting at the slot's offset) into `field` along
/// `idx`.
pub(crate) fn unpack(payload: &[f64], idx: &[u32], field: &mut FieldMut<'_>) {
    match field {
        FieldMut::Scalar(f) => {
            for (&l, &v) in idx.iter().zip(payload) {
                f[l as usize] = v;
            }
        }
        FieldMut::Vec2(f) => {
            for (i, &l) in idx.iter().enumerate() {
                f[l as usize] = Vec2::new(payload[2 * i], payload[2 * i + 1]);
            }
        }
        FieldMut::Corner4(f) => {
            for (i, &l) in idx.iter().enumerate() {
                f[l as usize].copy_from_slice(&payload[4 * i..4 * i + 4]);
            }
        }
        FieldMut::CornerVec2(f) => {
            for (i, &l) in idx.iter().enumerate() {
                for (c, v) in f[l as usize].iter_mut().enumerate() {
                    *v = Vec2::new(payload[8 * i + 2 * c], payload[8 * i + 2 * c + 1]);
                }
            }
        }
        FieldMut::CornerPair(fx, fy) => {
            for (i, &l) in idx.iter().enumerate() {
                for c in 0..4 {
                    fx[l as usize][c] = payload[8 * i + 2 * c];
                    fy[l as usize][c] = payload[8 * i + 2 * c + 1];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Typhon;
    use bookleaf_mesh::{generate_rect, RectSpec, SubMesh, SubMeshPlan};

    /// 6x6 grid, two vertical stripes.
    fn two_stripes() -> Vec<SubMesh> {
        let m = generate_rect(&RectSpec::unit_square(6), |_| 0).unwrap();
        let owner: Vec<usize> = (0..m.n_elements())
            .map(|e| usize::from(e % 6 >= 3))
            .collect();
        SubMeshPlan::build(&m, &owner, 2).unwrap()
    }

    fn build_state_plan(sub: &SubMesh) -> (HaloPlan, PhaseId) {
        let mut b = HaloPlanBuilder::new(&sub.el_exchange, &sub.nd_exchange);
        let id = b.phase(
            "state",
            &[
                (Entity::Node, SlotKind::Vec2),
                (Entity::Element, SlotKind::Scalar),
                (Entity::Element, SlotKind::Corner4),
                (Entity::Element, SlotKind::CornerVec2),
            ],
        );
        (b.build(), id)
    }

    #[test]
    fn aggregated_phase_moves_every_slot_in_one_message() {
        let subs = two_stripes();
        let out = Typhon::run(2, |ctx| {
            let sub = &subs[ctx.rank()];
            let (plan, phase) = build_state_plan(sub);

            let mut nd: Vec<Vec2> = (0..sub.mesh.n_nodes())
                .map(|n| {
                    if sub.owns_node(n) {
                        let g = sub.nd_l2g[n] as f64;
                        Vec2::new(g, 2.0 * g)
                    } else {
                        Vec2::new(-1.0, -1.0)
                    }
                })
                .collect();
            let mut sc: Vec<f64> = (0..sub.mesh.n_elements())
                .map(|e| {
                    if sub.owns_element(e) {
                        sub.el_l2g[e] as f64
                    } else {
                        -1.0
                    }
                })
                .collect();
            let mut c4: Vec<[f64; 4]> = (0..sub.mesh.n_elements())
                .map(|e| {
                    let g = sub.el_l2g[e] as f64;
                    if sub.owns_element(e) {
                        [g, g + 0.25, g + 0.5, g + 0.75]
                    } else {
                        [f64::NAN; 4]
                    }
                })
                .collect();
            let mut cv: Vec<[Vec2; 4]> = (0..sub.mesh.n_elements())
                .map(|e| {
                    let g = sub.el_l2g[e] as f64;
                    if sub.owns_element(e) {
                        std::array::from_fn(|c| Vec2::new(g + c as f64, g - c as f64))
                    } else {
                        [Vec2::new(f64::NAN, f64::NAN); 4]
                    }
                })
                .collect();

            plan.execute(
                ctx,
                phase,
                &mut [
                    FieldMut::Vec2(&mut nd),
                    FieldMut::Scalar(&mut sc),
                    FieldMut::Corner4(&mut c4),
                    FieldMut::CornerVec2(&mut cv),
                ],
            )
            .unwrap();

            let nd_ok = nd.iter().enumerate().all(|(n, v)| {
                let g = sub.nd_l2g[n] as f64;
                *v == Vec2::new(g, 2.0 * g)
            });
            let sc_ok = sc
                .iter()
                .enumerate()
                .all(|(e, &v)| v == sub.el_l2g[e] as f64);
            let c4_ok = c4.iter().enumerate().all(|(e, cf)| {
                let g = sub.el_l2g[e] as f64;
                cf[0] == g && cf[3] == g + 0.75
            });
            let cv_ok = cv.iter().enumerate().all(|(e, cf)| {
                let g = sub.el_l2g[e] as f64;
                (0..4).all(|c| cf[c] == Vec2::new(g + c as f64, g - c as f64))
            });
            let stats = ctx.stats();
            (nd_ok && sc_ok && c4_ok && cv_ok, stats, plan.n_links())
        })
        .unwrap();
        for (ok, stats, n_links) in out {
            assert!(ok, "ghost data wrong after aggregated exchange");
            // ONE message per neighbour for the whole four-slot phase.
            assert_eq!(stats.messages_sent, n_links as u64);
            let ph = stats.phase("state").unwrap();
            assert_eq!(ph.messages_sent, n_links as u64);
            assert_eq!(ph.doubles_sent, stats.doubles_sent);
        }
    }

    #[test]
    fn doubles_per_execution_matches_traffic() {
        let subs = two_stripes();
        let out = Typhon::run(2, |ctx| {
            let sub = &subs[ctx.rank()];
            let (plan, phase) = build_state_plan(sub);
            let mut nd = vec![Vec2::ZERO; sub.mesh.n_nodes()];
            let mut sc = vec![0.0; sub.mesh.n_elements()];
            let mut c4 = vec![[0.0; 4]; sub.mesh.n_elements()];
            let mut cv = vec![[Vec2::ZERO; 4]; sub.mesh.n_elements()];
            plan.execute(
                ctx,
                phase,
                &mut [
                    FieldMut::Vec2(&mut nd),
                    FieldMut::Scalar(&mut sc),
                    FieldMut::Corner4(&mut c4),
                    FieldMut::CornerVec2(&mut cv),
                ],
            )
            .unwrap();
            (ctx.stats().doubles_sent, plan.doubles_per_execution(phase))
        })
        .unwrap();
        for (sent, predicted) in out {
            assert_eq!(sent, predicted as u64);
        }
    }

    #[test]
    #[should_panic(expected = "registered as Scalar")]
    fn kind_mismatch_is_rejected() {
        let subs = two_stripes();
        let sub = &subs[0];
        let mut b = HaloPlanBuilder::new(&sub.el_exchange, &sub.nd_exchange);
        let phase = b.phase("p", &[(Entity::Element, SlotKind::Scalar)]);
        let plan = b.build();
        let wrong = vec![Vec2::ZERO; sub.mesh.n_elements()];
        Typhon::run(1, |ctx| {
            let _ = plan.execute(ctx, phase, &mut [FieldMut::Vec2(&mut wrong.clone())]);
        })
        .unwrap();
    }

    #[test]
    #[should_panic(expected = "wrong index space")]
    fn entity_misbinding_is_rejected() {
        let subs = two_stripes();
        let sub = &subs[0];
        let mut b = HaloPlanBuilder::new(&sub.el_exchange, &sub.nd_exchange);
        // Registered node-indexed, but we will bind an element-sized
        // field: the node schedules index past the element count on
        // this decomposition, so execute must refuse up front.
        let phase = b.phase("p", &[(Entity::Node, SlotKind::Scalar)]);
        let plan = b.build();
        assert!(sub.mesh.n_elements() < sub.mesh.n_nodes());
        let wrong = vec![0.0; sub.mesh.n_elements()];
        Typhon::run(1, |ctx| {
            let _ = plan.execute(ctx, phase, &mut [FieldMut::Scalar(&mut wrong.clone())]);
        })
        .unwrap();
    }

    #[test]
    fn plan_metadata_reflects_registration() {
        let subs = two_stripes();
        let (plan, phase) = build_state_plan(&subs[0]);
        assert_eq!(plan.phase_name(phase), "state");
        // The plan's link set is exactly the submesh's neighbour set.
        assert_eq!(plan.link_ranks(), subs[0].neighbour_ranks());
        assert_eq!(plan.n_links(), 1, "two stripes share one link");
    }

    /// Split post/complete must move exactly the same data as execute,
    /// even with two phases in flight at once and completes drained in
    /// reverse order.
    #[test]
    fn split_post_complete_with_two_phases_in_flight() {
        let subs = two_stripes();
        let out = Typhon::run(2, |ctx| {
            let sub = &subs[ctx.rank()];
            let mut b = HaloPlanBuilder::new(&sub.el_exchange, &sub.nd_exchange);
            let pa = b.phase("a", &[(Entity::Element, SlotKind::Scalar)]);
            let pb = b.phase("b", &[(Entity::Node, SlotKind::Vec2)]);
            let plan = b.build();

            let mut sc: Vec<f64> = (0..sub.mesh.n_elements())
                .map(|e| {
                    if sub.owns_element(e) {
                        sub.el_l2g[e] as f64
                    } else {
                        -1.0
                    }
                })
                .collect();
            let mut nd: Vec<Vec2> = (0..sub.mesh.n_nodes())
                .map(|n| {
                    if sub.owns_node(n) {
                        Vec2::new(sub.nd_l2g[n] as f64, 0.5)
                    } else {
                        Vec2::new(-1.0, -1.0)
                    }
                })
                .collect();

            let mut fa = [FieldMut::Scalar(&mut sc)];
            let mut fb = [FieldMut::Vec2(&mut nd)];
            let ta = plan.post(ctx, pa, &fa).unwrap();
            let tb = plan.post(ctx, pb, &fb).unwrap();
            // Complete in reverse post order: the mailbox sorts it out.
            plan.complete(ctx, tb, &mut fb).unwrap();
            plan.complete(ctx, ta, &mut fa).unwrap();

            let sc_ok = sc
                .iter()
                .enumerate()
                .all(|(e, &v)| v == sub.el_l2g[e] as f64);
            let nd_ok = nd
                .iter()
                .enumerate()
                .all(|(n, v)| *v == Vec2::new(sub.nd_l2g[n] as f64, 0.5));
            (sc_ok && nd_ok, ctx.stats(), plan.n_links())
        })
        .unwrap();
        for (ok, stats, n_links) in out {
            assert!(ok, "split exchange corrupted ghost data");
            assert_eq!(stats.messages_sent, 2 * n_links as u64);
            // The tickets stayed open across real work: a window was
            // recorded for each phase.
            assert!(stats.overlap_window_seconds > 0.0);
            for name in ["a", "b"] {
                let p = stats.phase(name).unwrap();
                assert_eq!(p.messages_sent, n_links as u64);
                assert!(p.overlap_window_seconds >= 0.0);
            }
        }
    }

    /// Steady-state phase execution recycles payload buffers across
    /// phases instead of allocating: after a warm-up round the pool
    /// level is stable and non-empty.
    #[test]
    fn phases_reuse_pooled_buffers() {
        let subs = two_stripes();
        let out = Typhon::run(2, |ctx| {
            let sub = &subs[ctx.rank()];
            let (plan, phase) = build_state_plan(sub);
            let mut nd = vec![Vec2::ZERO; sub.mesh.n_nodes()];
            let mut sc = vec![0.0; sub.mesh.n_elements()];
            let mut c4 = vec![[0.0; 4]; sub.mesh.n_elements()];
            let mut cv = vec![[Vec2::ZERO; 4]; sub.mesh.n_elements()];
            let mut run_once = |ctx: &crate::runtime::RankCtx| {
                plan.execute(
                    ctx,
                    phase,
                    &mut [
                        FieldMut::Vec2(&mut nd),
                        FieldMut::Scalar(&mut sc),
                        FieldMut::Corner4(&mut c4),
                        FieldMut::CornerVec2(&mut cv),
                    ],
                )
                .unwrap();
            };
            run_once(ctx);
            ctx.barrier().unwrap(); // all first-round payloads delivered & recycled
            let after_warmup = ctx.pool_len();
            for _ in 0..5 {
                run_once(ctx);
                ctx.barrier().unwrap();
            }
            (after_warmup, ctx.pool_len())
        })
        .unwrap();
        for (warm, steady) in out {
            assert!(warm > 0, "nothing recycled after the first phase");
            assert!(
                steady <= warm + 1,
                "pool kept growing across phases: {warm} -> {steady}"
            );
        }
    }

    #[test]
    fn single_rank_plan_is_empty_and_silent() {
        let m = generate_rect(&RectSpec::unit_square(3), |_| 0).unwrap();
        let subs = SubMeshPlan::build(&m, &vec![0; m.n_elements()], 1).unwrap();
        let sub = &subs[0];
        let (plan, phase) = build_state_plan(sub);
        assert_eq!(plan.n_links(), 0);
        let out = Typhon::run(1, |ctx| {
            let mut nd = vec![Vec2::ZERO; sub.mesh.n_nodes()];
            let mut sc = vec![0.0; sub.mesh.n_elements()];
            let mut c4 = vec![[0.0; 4]; sub.mesh.n_elements()];
            let mut cv = vec![[Vec2::ZERO; 4]; sub.mesh.n_elements()];
            plan.execute(
                ctx,
                phase,
                &mut [
                    FieldMut::Vec2(&mut nd),
                    FieldMut::Scalar(&mut sc),
                    FieldMut::Corner4(&mut c4),
                    FieldMut::CornerVec2(&mut cv),
                ],
            )
            .unwrap();
            ctx.stats().messages_sent
        })
        .unwrap();
        assert_eq!(out[0], 0);
    }
}
