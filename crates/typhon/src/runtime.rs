//! The rank team: threads, point-to-point messaging, collectives.
//!
//! [`Typhon::run`] spawns one thread per rank, hands each a [`RankCtx`],
//! and joins them, propagating panics as typed errors. Message passing is
//! tag-matched (out-of-order arrivals are parked in a local mailbox, as an
//! MPI implementation would) and collectives use a generation-counted
//! shared cell so they can be called any number of times.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

use bookleaf_util::{BookLeafError, Result};

use crate::stats::CommStats;

/// A point-to-point message: sender rank, tag, payload of doubles.
struct Message {
    from: usize,
    tag: u64,
    payload: Vec<f64>,
}

/// Shared state for barriers and reductions (one per team).
struct Collective {
    lock: Mutex<CollState>,
    cv: Condvar,
    n_ranks: usize,
}

#[derive(Default)]
struct CollState {
    generation: u64,
    arrived: usize,
    acc_min: f64,
    acc_sum: f64,
    /// Result of the most recently completed generation. A rank cannot be
    /// more than one generation ahead of any other (the wait below blocks
    /// it), so a single slot is enough.
    last_result: (f64, f64),
}

impl Collective {
    fn new(n_ranks: usize) -> Self {
        Collective {
            lock: Mutex::new(CollState {
                acc_min: f64::INFINITY,
                ..Default::default()
            }),
            cv: Condvar::new(),
            n_ranks,
        }
    }

    /// Combined barrier + reduction: every rank contributes `value`; all
    /// receive `(min, sum)` of the contributions.
    fn reduce(&self, value: f64) -> (f64, f64) {
        let mut st = self.lock.lock();
        let gen = st.generation;
        st.acc_min = st.acc_min.min(value);
        st.acc_sum += value;
        st.arrived += 1;
        if st.arrived == self.n_ranks {
            // Last arrival: publish and reset for the next generation.
            let out = (st.acc_min, st.acc_sum);
            st.generation += 1;
            st.arrived = 0;
            st.acc_min = f64::INFINITY;
            st.acc_sum = 0.0;
            st.last_result = out;
            self.cv.notify_all();
            return out;
        }
        self.cv.wait_while(&mut st, |s| s.generation == gen);
        st.last_result
    }
}

/// Out-of-order messages parked by (source rank, tag).
type Mailbox = HashMap<(usize, u64), Vec<Vec<f64>>>;

/// Cap on pooled payload buffers per rank: enough for every in-flight
/// neighbour message of a phase plus slack, small enough that a burst
/// (e.g. the all-to-all stress tests) cannot pin unbounded memory.
const BUFFER_POOL_CAP: usize = 64;

/// Largest buffer capacity (in doubles) worth pooling: 64 Ki doubles =
/// 512 KB, comfortably above any halo payload. One-off giant messages
/// (restart gathers, stress tests) are freed rather than recycled, so
/// the pool's worst-case footprint is bounded in bytes
/// (`BUFFER_POOL_CAP × 512 KB = 32 MB` per rank), not just in count.
const BUFFER_POOL_MAX_DOUBLES: usize = 64 * 1024;

/// Per-rank handle used inside the rank closure.
pub struct RankCtx {
    rank: usize,
    n_ranks: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    // Mutex rather than RefCell: a rank may drive its kernels from a
    // rayon pool (the hybrid model), so the context must be Sync. The
    // locks are uncontended (one logical owner per rank).
    mailbox: Mutex<Mailbox>,
    collective: Arc<Collective>,
    phase: Mutex<u64>,
    stats: Mutex<CommStats>,
    /// Recycled payload buffers. Buffers circulate through the team:
    /// a send moves its buffer to the receiving rank, which recycles it
    /// into *its* pool after unpacking; symmetric exchange patterns keep
    /// the pools balanced, so steady-state halo traffic allocates
    /// nothing.
    pool: Mutex<Vec<Vec<f64>>>,
}

impl RankCtx {
    /// This rank's id.
    #[inline]
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Team size.
    #[inline]
    #[must_use]
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Next phase tag. Every rank must call the tag-consuming collective
    /// operations in the same order, so matching calls draw matching tags
    /// — exactly the discipline an MPI code with per-phase tags follows.
    pub fn next_tag(&self) -> u64 {
        let mut phase = self.phase.lock();
        let t = *phase;
        *phase += 1;
        t
    }

    /// Non-blocking send of `payload` to `to` under `tag`.
    pub fn send(&self, to: usize, tag: u64, payload: Vec<f64>) {
        self.send_impl(to, tag, payload, None);
    }

    /// [`RankCtx::send`], additionally attributing the traffic to a named
    /// exchange phase in this rank's [`CommStats`] breakdown.
    pub fn send_in_phase(&self, to: usize, tag: u64, payload: Vec<f64>, phase: &'static str) {
        self.send_impl(to, tag, payload, Some(phase));
    }

    fn send_impl(&self, to: usize, tag: u64, payload: Vec<f64>, phase: Option<&'static str>) {
        {
            let mut s = self.stats.lock();
            s.messages_sent += 1;
            s.doubles_sent += payload.len() as u64;
            if let Some(name) = phase {
                let p = s.phase_mut(name);
                p.messages_sent += 1;
                p.doubles_sent += payload.len() as u64;
            }
        }
        self.senders[to]
            .send(Message {
                from: self.rank,
                tag,
                payload,
            })
            .expect("peer rank hung up");
    }

    /// A cleared payload buffer with at least `capacity` reserved, drawn
    /// from this rank's recycle pool when possible. Pair with
    /// [`RankCtx::recycle_buffer`] after unpacking a received payload to
    /// keep steady-state exchange traffic allocation-free.
    ///
    /// Selection is **best-fit**: the smallest pooled buffer whose
    /// capacity already covers the request, so a large recycled payload
    /// is not burned on a tiny request. When no pooled buffer is big
    /// enough, the largest one is grown instead (the cheapest
    /// reallocation available).
    #[must_use]
    pub fn take_buffer(&self, capacity: usize) -> Vec<f64> {
        let recycled = {
            let mut pool = self.pool.lock();
            let mut best: Option<(usize, usize)> = None; // (index, capacity)
            for (i, buf) in pool.iter().enumerate() {
                let c = buf.capacity();
                let better = match best {
                    None => true,
                    // Once a sufficient buffer is known, only a *smaller*
                    // sufficient one improves; before that, bigger is
                    // closer to sufficient.
                    Some((_, bc)) if bc >= capacity => c >= capacity && c < bc,
                    Some((_, bc)) => c > bc,
                };
                if better {
                    best = Some((i, c));
                }
            }
            best.map(|(i, _)| pool.swap_remove(i))
        };
        match recycled {
            Some(mut buf) => {
                buf.clear();
                buf.reserve(capacity);
                buf
            }
            None => Vec::with_capacity(capacity),
        }
    }

    /// Number of buffers currently pooled (accounting tests only).
    #[cfg(test)]
    pub(crate) fn pool_len(&self) -> usize {
        self.pool.lock().len()
    }

    /// Return a finished payload buffer (typically one produced by
    /// [`RankCtx::recv`]) to this rank's recycle pool. Empty and
    /// oversized buffers are dropped instead, keeping the pool's
    /// footprint bounded in bytes as well as count.
    pub fn recycle_buffer(&self, buf: Vec<f64>) {
        if buf.capacity() == 0 || buf.capacity() > BUFFER_POOL_MAX_DOUBLES {
            return;
        }
        let mut pool = self.pool.lock();
        if pool.len() < BUFFER_POOL_CAP {
            pool.push(buf);
        }
    }

    /// Non-blocking receive from `from` under `tag`: the matching
    /// payload if it has already been delivered (mailbox or channel),
    /// `None` otherwise. Messages for other `(source, tag)` pairs
    /// encountered while draining the channel are parked in the mailbox,
    /// exactly as the blocking receive does.
    pub fn try_recv(&self, from: usize, tag: u64) -> Option<Vec<f64>> {
        if let Some(q) = self.mailbox.lock().get_mut(&(from, tag)) {
            if !q.is_empty() {
                return Some(q.remove(0));
            }
        }
        while let Ok(msg) = self.receiver.try_recv() {
            if msg.from == from && msg.tag == tag {
                return Some(msg.payload);
            }
            self.mailbox
                .lock()
                .entry((msg.from, msg.tag))
                .or_default()
                .push(msg.payload);
        }
        None
    }

    /// Blocking receive from `from` under `tag`. Out-of-order messages
    /// are parked until asked for.
    pub fn recv(&self, from: usize, tag: u64) -> Vec<f64> {
        self.recv_tracked(from, tag, None)
    }

    /// [`RankCtx::recv`], attributing any time spent *blocked* (payload
    /// not yet delivered) to `phase` in this rank's [`CommStats`]. A
    /// receive that finds its payload already here records exactly zero
    /// and never reads a clock.
    pub fn recv_in_phase(&self, from: usize, tag: u64, phase: &'static str) -> Vec<f64> {
        self.recv_tracked(from, tag, Some(phase))
    }

    fn recv_tracked(&self, from: usize, tag: u64, phase: Option<&'static str>) -> Vec<f64> {
        // Fast path: already delivered — no clock, no stats.
        if let Some(payload) = self.try_recv(from, tag) {
            return payload;
        }
        let start = Instant::now();
        let payload = loop {
            let msg = self
                .receiver
                .recv()
                .expect("team disbanded while receiving");
            if msg.from == from && msg.tag == tag {
                break msg.payload;
            }
            self.mailbox
                .lock()
                .entry((msg.from, msg.tag))
                .or_default()
                .push(msg.payload);
        };
        let waited = start.elapsed().as_secs_f64();
        let mut s = self.stats.lock();
        s.recv_wait_seconds += waited;
        if let Some(name) = phase {
            s.phase_mut(name).recv_wait_seconds += waited;
        }
        payload
    }

    /// Record a completed post→complete overlap window for `phase` (used
    /// by the split-phase exchange plan).
    pub(crate) fn record_overlap_window(&self, phase: &'static str, seconds: f64) {
        let mut s = self.stats.lock();
        s.overlap_window_seconds += seconds;
        s.phase_mut(phase).overlap_window_seconds += seconds;
    }

    /// Global minimum across all ranks (BookLeaf's single per-step
    /// reduction, used for the time step).
    pub fn allreduce_min(&self, value: f64) -> f64 {
        self.stats.lock().collectives += 1;
        self.collective.reduce(value).0
    }

    /// Global sum across all ranks (used by diagnostics and tests).
    pub fn allreduce_sum(&self, value: f64) -> f64 {
        self.stats.lock().collectives += 1;
        self.collective.reduce(value).1
    }

    /// Barrier.
    pub fn barrier(&self) {
        self.stats.lock().collectives += 1;
        self.collective.reduce(0.0);
    }

    /// Snapshot of this rank's communication counters.
    #[must_use]
    pub fn stats(&self) -> CommStats {
        self.stats.lock().clone()
    }
}

/// The team factory.
pub struct Typhon;

impl Typhon {
    /// Run `f` on `n_ranks` rank threads and collect the per-rank results
    /// in rank order. Panics inside a rank are converted into
    /// [`BookLeafError::RankPanic`].
    pub fn run<R, F>(n_ranks: usize, f: F) -> Result<Vec<R>>
    where
        R: Send,
        F: Fn(&RankCtx) -> R + Sync,
    {
        if n_ranks == 0 {
            return Err(BookLeafError::Comm(
                "team must have at least one rank".into(),
            ));
        }
        let mut senders = Vec::with_capacity(n_ranks);
        let mut receivers = Vec::with_capacity(n_ranks);
        for _ in 0..n_ranks {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let collective = Arc::new(Collective::new(n_ranks));

        let results: Vec<std::thread::Result<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = receivers
                .iter_mut()
                .enumerate()
                .map(|(rank, rx)| {
                    let ctx = RankCtx {
                        rank,
                        n_ranks,
                        senders: senders.clone(),
                        receiver: rx.take().expect("receiver taken once"),
                        mailbox: Mutex::new(HashMap::new()),
                        collective: Arc::clone(&collective),
                        phase: Mutex::new(0),
                        stats: Mutex::new(CommStats::default()),
                        pool: Mutex::new(Vec::new()),
                    };
                    let f = &f;
                    scope.spawn(move || f(&ctx))
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });

        let mut out = Vec::with_capacity(n_ranks);
        for (rank, r) in results.into_iter().enumerate() {
            match r {
                Ok(v) => out.push(v),
                Err(payload) => {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "unknown panic".into());
                    return Err(BookLeafError::RankPanic { rank, message });
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn team_runs_and_orders_results() {
        let out = Typhon::run(4, |ctx| ctx.rank() * 10).unwrap();
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn zero_ranks_rejected() {
        assert!(Typhon::run(0, |_| ()).is_err());
    }

    #[test]
    fn ring_send_recv() {
        let out = Typhon::run(3, |ctx| {
            let to = (ctx.rank() + 1) % 3;
            let from = (ctx.rank() + 2) % 3;
            let tag = ctx.next_tag();
            ctx.send(to, tag, vec![ctx.rank() as f64]);
            let got = ctx.recv(from, tag);
            got[0] as usize
        })
        .unwrap();
        assert_eq!(out, vec![2, 0, 1]);
    }

    #[test]
    fn out_of_order_tags_are_parked() {
        // Rank 0 sends two messages with different tags; rank 1 receives
        // them in the opposite order.
        let out = Typhon::run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, vec![7.0]);
                ctx.send(1, 8, vec![8.0]);
                0.0
            } else {
                let b = ctx.recv(0, 8);
                let a = ctx.recv(0, 7);
                a[0] * 10.0 + b[0]
            }
        })
        .unwrap();
        assert_eq!(out[1], 78.0);
    }

    #[test]
    fn allreduce_min_and_sum() {
        let out = Typhon::run(5, |ctx| {
            let v = (ctx.rank() + 1) as f64;
            let mn = ctx.allreduce_min(v);
            let sm = ctx.allreduce_sum(v);
            (mn, sm)
        })
        .unwrap();
        for (mn, sm) in out {
            assert_eq!(mn, 1.0);
            assert_eq!(sm, 15.0);
        }
    }

    #[test]
    fn repeated_collectives() {
        let out = Typhon::run(3, |ctx| {
            let mut acc = 0.0;
            for i in 0..100 {
                acc += ctx.allreduce_min((ctx.rank() + i) as f64);
            }
            acc
        })
        .unwrap();
        // min over ranks of (rank + i) = i; sum over i of i = 4950.
        for v in out {
            assert_eq!(v, 4950.0);
        }
    }

    #[test]
    fn rank_panic_is_reported() {
        let err = Typhon::run(2, |ctx| {
            if ctx.rank() == 1 {
                panic!("injected failure");
            }
            ctx.barrier_free_work()
        })
        .unwrap_err();
        match err {
            BookLeafError::RankPanic { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("injected failure"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn stats_count_traffic() {
        let out = Typhon::run(2, |ctx| {
            let tag = ctx.next_tag();
            if ctx.rank() == 0 {
                ctx.send(1, tag, vec![1.0, 2.0, 3.0]);
            } else {
                ctx.recv(0, tag);
            }
            ctx.stats()
        })
        .unwrap();
        assert_eq!(out[0].messages_sent, 1);
        assert_eq!(out[0].doubles_sent, 3);
        assert_eq!(out[1].messages_sent, 0);
    }

    #[test]
    fn phase_attributed_sends_feed_the_breakdown() {
        let out = Typhon::run(2, |ctx| {
            let t0 = ctx.next_tag();
            let t1 = ctx.next_tag();
            let t2 = ctx.next_tag();
            if ctx.rank() == 0 {
                ctx.send_in_phase(1, t0, vec![1.0, 2.0], "alpha");
                ctx.send_in_phase(1, t1, vec![3.0], "beta");
                ctx.send(1, t2, vec![4.0]);
            } else {
                ctx.recv(0, t0);
                ctx.recv(0, t1);
                ctx.recv(0, t2);
            }
            ctx.stats()
        })
        .unwrap();
        let s = &out[0];
        // Totals cover attributed and unattributed sends alike.
        assert_eq!(s.messages_sent, 3);
        assert_eq!(s.doubles_sent, 4);
        let alpha = s.phase("alpha").unwrap();
        assert_eq!((alpha.messages_sent, alpha.doubles_sent), (1, 2));
        let beta = s.phase("beta").unwrap();
        assert_eq!((beta.messages_sent, beta.doubles_sent), (1, 1));
    }

    #[test]
    fn collectives_are_counted() {
        let out = Typhon::run(3, |ctx| {
            ctx.allreduce_min(1.0);
            ctx.allreduce_sum(1.0);
            ctx.barrier();
            ctx.stats()
        })
        .unwrap();
        for s in out {
            assert_eq!(s.collectives, 3);
        }
    }

    #[test]
    fn buffer_pool_recycles_capacity() {
        let out = Typhon::run(1, |ctx| {
            let mut b = ctx.take_buffer(100);
            b.resize(100, 0.0);
            let cap = b.capacity();
            ctx.recycle_buffer(b);
            let again = ctx.take_buffer(10);
            (cap, again.capacity(), again.len())
        })
        .unwrap();
        let (cap, cap_again, len) = out[0];
        assert!(cap >= 100);
        assert_eq!(cap_again, cap, "recycled buffer should be reused");
        assert_eq!(len, 0, "recycled buffer must come back cleared");
    }

    #[test]
    fn take_buffer_is_best_fit() {
        Typhon::run(1, |ctx| {
            // Pool two buffers: a small one and a big one.
            let mut small = ctx.take_buffer(100);
            small.resize(100, 0.0);
            let small_cap = small.capacity();
            let mut big = ctx.take_buffer(10_000);
            big.resize(10_000, 0.0);
            let big_cap = big.capacity();
            assert!(big_cap > small_cap);
            ctx.recycle_buffer(small);
            ctx.recycle_buffer(big);
            assert_eq!(ctx.pool_len(), 2);
            // A tiny request must take the *smallest sufficient* buffer,
            // not burn the big one.
            let got = ctx.take_buffer(50);
            assert_eq!(
                got.capacity(),
                small_cap,
                "best fit picked the wrong buffer"
            );
            // The big buffer is still pooled for the next big request.
            let got_big = ctx.take_buffer(10_000);
            assert_eq!(got_big.capacity(), big_cap);
        })
        .unwrap();
    }

    #[test]
    fn take_buffer_grows_the_largest_when_none_suffices() {
        Typhon::run(1, |ctx| {
            let mut small = ctx.take_buffer(16);
            small.resize(16, 0.0);
            let mut mid = ctx.take_buffer(64);
            mid.resize(64, 0.0);
            ctx.recycle_buffer(small);
            ctx.recycle_buffer(mid);
            assert_eq!(ctx.pool_len(), 2);
            // Nothing pooled covers 1000 doubles: the largest pooled
            // buffer is taken (and grown), leaving the small one.
            let got = ctx.take_buffer(1000);
            assert!(got.capacity() >= 1000);
            assert_eq!(ctx.pool_len(), 1);
            let leftover = ctx.take_buffer(1);
            assert!(leftover.capacity() <= 16 * 2, "small buffer should remain");
        })
        .unwrap();
    }

    #[test]
    fn pool_count_is_capped() {
        Typhon::run(1, |ctx| {
            for _ in 0..(2 * BUFFER_POOL_CAP) {
                ctx.recycle_buffer(vec![1.0]);
            }
            assert_eq!(ctx.pool_len(), BUFFER_POOL_CAP);
        })
        .unwrap();
    }

    #[test]
    fn recv_recycle_take_round_trip_does_not_allocate() {
        let out = Typhon::run(2, |ctx| {
            if ctx.rank() == 0 {
                // Two rounds: the second send reuses the buffer that came
                // back from the first round's receive on rank 0's side.
                let tag = ctx.next_tag();
                let mut payload = ctx.take_buffer(256);
                payload.resize(256, 1.0);
                ctx.send(1, tag, payload);
                ctx.barrier();
                true
            } else {
                let tag = ctx.next_tag();
                let payload = ctx.recv(0, tag);
                let ptr = payload.as_ptr();
                let cap = payload.capacity();
                ctx.recycle_buffer(payload);
                // Taking a buffer of the same size must hand back the
                // very same allocation — pointer-identical, no alloc.
                let again = ctx.take_buffer(256);
                let same = again.as_ptr() == ptr && again.capacity() == cap;
                ctx.barrier();
                same
            }
        })
        .unwrap();
        assert!(out[1], "recv → recycle → take did not reuse the allocation");
    }

    #[test]
    fn blocked_recv_records_wait_seconds() {
        let out = Typhon::run(2, |ctx| {
            let tag = ctx.next_tag();
            if ctx.rank() == 0 {
                ctx.barrier();
                std::thread::sleep(std::time::Duration::from_millis(20));
                ctx.send(1, tag, vec![1.0]);
                ctx.stats()
            } else {
                ctx.barrier();
                // The sender is still sleeping: this receive must block
                // and the blocked time must be attributed.
                ctx.recv_in_phase(0, tag, "late");
                ctx.stats()
            }
        })
        .unwrap();
        assert_eq!(out[0].recv_wait_seconds, 0.0, "sender never waited");
        assert!(
            out[1].recv_wait_seconds > 0.0,
            "blocked receive recorded no wait"
        );
        let late = out[1].phase("late").unwrap();
        assert!(late.recv_wait_seconds > 0.0);
        assert!((late.recv_wait_seconds - out[1].recv_wait_seconds).abs() < 1e-9);
    }

    #[test]
    fn delivered_recv_records_zero_wait() {
        let out = Typhon::run(2, |ctx| {
            let tag = ctx.next_tag();
            if ctx.rank() == 0 {
                ctx.send(1, tag, vec![1.0]);
                ctx.barrier();
                0.0
            } else {
                // The barrier guarantees the message arrived before the
                // receive is posted: the fast path must record *exactly*
                // zero wait (it never reads a clock).
                ctx.barrier();
                ctx.recv_in_phase(0, tag, "early");
                let s = ctx.stats();
                assert!(
                    s.phase("early").is_none()
                        || s.phase("early").unwrap().recv_wait_seconds == 0.0
                );
                s.recv_wait_seconds
            }
        })
        .unwrap();
        assert_eq!(out[1], 0.0);
    }

    #[test]
    fn try_recv_is_non_blocking_and_parks_strangers() {
        let out = Typhon::run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 5, vec![5.0]);
                ctx.send(1, 9, vec![9.0]);
                ctx.barrier();
                0.0
            } else {
                assert!(ctx.try_recv(0, 99).is_none(), "no such message yet");
                ctx.barrier();
                // Both messages are in; asking for tag 9 first drains
                // tag 5 into the mailbox.
                let nine = ctx.try_recv(0, 9).expect("tag 9 delivered");
                let five = ctx.try_recv(0, 5).expect("tag 5 parked in mailbox");
                nine[0] * 10.0 + five[0]
            }
        })
        .unwrap();
        assert_eq!(out[1], 95.0);
    }

    #[test]
    fn oversized_buffers_are_not_pooled() {
        let out = Typhon::run(1, |ctx| {
            let big = ctx.take_buffer(BUFFER_POOL_MAX_DOUBLES + 1);
            let big_cap = big.capacity();
            ctx.recycle_buffer(big);
            // The oversized buffer must have been dropped, not recycled.
            ctx.take_buffer(1).capacity() < big_cap
        })
        .unwrap();
        assert!(out[0]);
    }

    impl RankCtx {
        /// Helper for the panic test: something innocuous that does not
        /// block on the panicking peer.
        fn barrier_free_work(&self) -> f64 {
            42.0
        }
    }
}
