//! The rank team: threads, point-to-point messaging, collectives.
//!
//! [`Typhon::run`] spawns one thread per rank, hands each a [`RankCtx`],
//! and joins them, propagating panics as typed errors. Message passing is
//! tag-matched (out-of-order arrivals are parked in a local mailbox, as an
//! MPI implementation would) and collectives use a generation-counted
//! shared cell so they can be called any number of times.
//!
//! ## Resilience contract
//!
//! Every blocking operation is bounded: receives and collectives carry a
//! deadline ([`TyphonOptions::recv_timeout`]) and surface expiry as a
//! typed [`CommError`], never a hang. Every payload travels with a
//! CRC-32 checksum, verified on arrival, so in-flight corruption —
//! injected by a [`FaultPlan`] or real — surfaces as
//! [`CommError::Corrupt`] instead of silently wrong physics. A rank
//! killed by its fault schedule returns [`CommError::Killed`] from its
//! next operation and simply exits; its peers observe the death as
//! `RecvTimeout` / `CollectiveTimeout` / `RankUnreachable` within one
//! timeout window. All error payloads are deterministic (ranks, tags,
//! steps — no wall-clock durations), so two runs of the same fault
//! schedule fail identically.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Condvar, Mutex};

use bookleaf_util::{crc32_f64s, BookLeafError, CommError, Result};

use crate::fault::{FaultKind, FaultPlan};
use crate::stats::CommStats;

/// A point-to-point message: sender rank, tag, checksummed payload.
struct Message {
    from: usize,
    tag: u64,
    payload: Vec<f64>,
    /// CRC-32 of the payload's bit pattern, computed at send time and
    /// verified at the first pull from the channel.
    checksum: u32,
}

/// Shared state for barriers and reductions (one per team).
struct Collective {
    lock: Mutex<CollState>,
    cv: Condvar,
    n_ranks: usize,
}

#[derive(Default)]
struct CollState {
    generation: u64,
    arrived: usize,
    acc_min: f64,
    acc_sum: f64,
    /// Result of the most recently completed generation. A rank cannot be
    /// more than one generation ahead of any other (the wait below blocks
    /// it), so a single slot is enough.
    last_result: (f64, f64),
}

impl Collective {
    fn new(n_ranks: usize) -> Self {
        Collective {
            lock: Mutex::new(CollState {
                acc_min: f64::INFINITY,
                ..Default::default()
            }),
            cv: Condvar::new(),
            n_ranks,
        }
    }

    /// Combined barrier + reduction: every rank contributes `value`; all
    /// receive `(min, sum)` of the contributions — or
    /// [`CommError::CollectiveTimeout`] if some rank never arrives
    /// within `timeout` (it died or hung).
    fn reduce(
        &self,
        rank: usize,
        value: f64,
        timeout: Duration,
    ) -> std::result::Result<(f64, f64), CommError> {
        let mut st = self.lock.lock();
        let gen = st.generation;
        st.acc_min = st.acc_min.min(value);
        st.acc_sum += value;
        st.arrived += 1;
        if st.arrived == self.n_ranks {
            // Last arrival: publish and reset for the next generation.
            let out = (st.acc_min, st.acc_sum);
            st.generation += 1;
            st.arrived = 0;
            st.acc_min = f64::INFINITY;
            st.acc_sum = 0.0;
            st.last_result = out;
            self.cv.notify_all();
            return Ok(out);
        }
        let timed_out = self
            .cv
            .wait_while_for(&mut st, |s| s.generation == gen, timeout);
        // A timeout can race with the last arrival: trust the generation
        // counter, not the timeout flag.
        if timed_out && st.generation == gen {
            return Err(CommError::CollectiveTimeout { rank });
        }
        Ok(st.last_result)
    }
}

/// Out-of-order messages parked by (source rank, tag). Parked payloads
/// have already passed checksum verification.
type Mailbox = HashMap<(usize, u64), Vec<Vec<f64>>>;

/// Cap on pooled payload buffers per rank: enough for every in-flight
/// neighbour message of a phase plus slack, small enough that a burst
/// (e.g. the all-to-all stress tests) cannot pin unbounded memory.
const BUFFER_POOL_CAP: usize = 64;

/// Largest buffer capacity (in doubles) worth pooling: 64 Ki doubles =
/// 512 KB, comfortably above any halo payload. One-off giant messages
/// (restart gathers, stress tests) are freed rather than recycled, so
/// the pool's worst-case footprint is bounded in bytes
/// (`BUFFER_POOL_CAP × 512 KB = 32 MB` per rank), not just in count.
const BUFFER_POOL_MAX_DOUBLES: usize = 64 * 1024;

/// Team-wide execution options: timeouts and the fault schedule.
#[derive(Clone, Debug)]
pub struct TyphonOptions {
    /// Deadline for every blocking receive and collective. Generous by
    /// default — a healthy step never waits seconds — so real deadlocks
    /// and dead ranks surface as typed timeouts instead of hangs, while
    /// slow-but-alive peers are never false-flagged.
    pub recv_timeout: Duration,
    /// Deterministic fault schedule shared by every rank; `None`
    /// injects nothing.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Recovery attempt index the schedule is evaluated against (a
    /// supervised re-run after rewind increments this, so attempt-0
    /// faults do not re-fire forever).
    pub attempt: usize,
}

impl Default for TyphonOptions {
    fn default() -> Self {
        TyphonOptions {
            recv_timeout: Duration::from_secs(60),
            fault_plan: None,
            attempt: 0,
        }
    }
}

impl TyphonOptions {
    /// Options with a fault plan attached (attempt 0, default timeout).
    #[must_use]
    pub fn with_faults(plan: FaultPlan) -> Self {
        TyphonOptions {
            fault_plan: Some(Arc::new(plan)),
            ..TyphonOptions::default()
        }
    }

    /// Replace the receive/collective deadline.
    #[must_use]
    pub fn timeout(mut self, recv_timeout: Duration) -> Self {
        self.recv_timeout = recv_timeout;
        self
    }

    /// Evaluate the fault schedule against a recovery attempt index.
    #[must_use]
    pub fn on_attempt(mut self, attempt: usize) -> Self {
        self.attempt = attempt;
        self
    }
}

/// Per-rank handle used inside the rank closure.
pub struct RankCtx {
    rank: usize,
    n_ranks: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    // Mutex rather than RefCell: a rank may drive its kernels from a
    // rayon pool (the hybrid model), so the context must be Sync. The
    // locks are uncontended (one logical owner per rank).
    mailbox: Mutex<Mailbox>,
    collective: Arc<Collective>,
    phase: Mutex<u64>,
    stats: Mutex<CommStats>,
    /// Recycled payload buffers. Buffers circulate through the team:
    /// a send moves its buffer to the receiving rank, which recycles it
    /// into *its* pool after unpacking; symmetric exchange patterns keep
    /// the pools balanced, so steady-state halo traffic allocates
    /// nothing.
    pool: Mutex<Vec<Vec<f64>>>,
    /// Receive/collective deadline (from [`TyphonOptions`]).
    recv_timeout: Duration,
    /// Shared fault schedule, if any.
    fault: Option<Arc<FaultPlan>>,
    /// Recovery attempt the schedule is evaluated against.
    attempt: usize,
    /// Current simulation step, advanced by [`RankCtx::begin_step`].
    step: Mutex<usize>,
    /// One-shot point fault armed for this rank's next send.
    armed: Mutex<Option<FaultKind>>,
    /// `Some(step)` once this rank's kill fired: every subsequent
    /// communication attempt returns [`CommError::Killed`].
    killed_at: Mutex<Option<usize>>,
}

impl RankCtx {
    /// This rank's id.
    #[inline]
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Team size.
    #[inline]
    #[must_use]
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// The receive/collective deadline this team runs under.
    #[inline]
    #[must_use]
    pub fn recv_timeout(&self) -> Duration {
        self.recv_timeout
    }

    /// Announce the top of simulation step `step`: advances the fault
    /// schedule. A scheduled kill fires here (and poisons every later
    /// communication attempt); a scheduled point fault is armed for this
    /// rank's next send. Ranks not running a stepped simulation never
    /// need to call this.
    pub fn begin_step(&self, step: usize) -> std::result::Result<(), CommError> {
        *self.step.lock() = step;
        self.check_killed()?;
        if let Some(plan) = &self.fault {
            match plan.action(self.attempt, step, self.rank) {
                Some(FaultKind::Kill) => {
                    *self.killed_at.lock() = Some(step);
                    return Err(CommError::Killed {
                        rank: self.rank,
                        step,
                    });
                }
                Some(point) => *self.armed.lock() = Some(point),
                None => {}
            }
        }
        Ok(())
    }

    /// `Err(Killed)` once this rank's scheduled death has fired.
    fn check_killed(&self) -> std::result::Result<(), CommError> {
        if let Some(step) = *self.killed_at.lock() {
            return Err(CommError::Killed {
                rank: self.rank,
                step,
            });
        }
        Ok(())
    }

    /// Next phase tag. Every rank must call the tag-consuming collective
    /// operations in the same order, so matching calls draw matching tags
    /// — exactly the discipline an MPI code with per-phase tags follows.
    pub fn next_tag(&self) -> u64 {
        let mut phase = self.phase.lock();
        let t = *phase;
        *phase += 1;
        t
    }

    /// Non-blocking send of `payload` to `to` under `tag`.
    pub fn send(
        &self,
        to: usize,
        tag: u64,
        payload: Vec<f64>,
    ) -> std::result::Result<(), CommError> {
        self.send_impl(to, tag, payload, None)
    }

    /// [`RankCtx::send`], additionally attributing the traffic to a named
    /// exchange phase in this rank's [`CommStats`] breakdown.
    pub fn send_in_phase(
        &self,
        to: usize,
        tag: u64,
        payload: Vec<f64>,
        phase: &'static str,
    ) -> std::result::Result<(), CommError> {
        self.send_impl(to, tag, payload, Some(phase))
    }

    fn send_impl(
        &self,
        to: usize,
        tag: u64,
        mut payload: Vec<f64>,
        phase: Option<&'static str>,
    ) -> std::result::Result<(), CommError> {
        self.check_killed()?;
        {
            let mut s = self.stats.lock();
            s.messages_sent += 1;
            s.doubles_sent += payload.len() as u64;
            if let Some(name) = phase {
                let p = s.phase_mut(name);
                p.messages_sent += 1;
                p.doubles_sent += payload.len() as u64;
            }
        }
        // Checksum the *true* payload; injected corruption mutates it
        // afterwards so the receiver's verification must fail.
        let mut checksum = crc32_f64s(&payload);
        match self.armed.lock().take() {
            Some(FaultKind::Corrupt) => {
                if let Some(first) = payload.first_mut() {
                    *first = f64::from_bits(first.to_bits() ^ 1);
                } else {
                    // Nothing to flip in an empty payload: lie about the
                    // checksum instead.
                    checksum ^= 1;
                }
            }
            Some(FaultKind::Drop) => return Ok(()), // lost in flight
            Some(FaultKind::Delay) => {
                if let Some(plan) = &self.fault {
                    let step = *self.step.lock();
                    std::thread::sleep(plan.delay_for(self.attempt, step, self.rank));
                }
            }
            Some(FaultKind::Kill) | None => {}
        }
        self.senders[to]
            .send(Message {
                from: self.rank,
                tag,
                payload,
                checksum,
            })
            .map_err(|_| CommError::RankUnreachable { to })
    }

    /// A cleared payload buffer with at least `capacity` reserved, drawn
    /// from this rank's recycle pool when possible. Pair with
    /// [`RankCtx::recycle_buffer`] after unpacking a received payload to
    /// keep steady-state exchange traffic allocation-free.
    ///
    /// Selection is **best-fit**: the smallest pooled buffer whose
    /// capacity already covers the request, so a large recycled payload
    /// is not burned on a tiny request. When no pooled buffer is big
    /// enough, the largest one is grown instead (the cheapest
    /// reallocation available).
    #[must_use]
    pub fn take_buffer(&self, capacity: usize) -> Vec<f64> {
        let recycled = {
            let mut pool = self.pool.lock();
            let mut best: Option<(usize, usize)> = None; // (index, capacity)
            for (i, buf) in pool.iter().enumerate() {
                let c = buf.capacity();
                let better = match best {
                    None => true,
                    // Once a sufficient buffer is known, only a *smaller*
                    // sufficient one improves; before that, bigger is
                    // closer to sufficient.
                    Some((_, bc)) if bc >= capacity => c >= capacity && c < bc,
                    Some((_, bc)) => c > bc,
                };
                if better {
                    best = Some((i, c));
                }
            }
            best.map(|(i, _)| pool.swap_remove(i))
        };
        match recycled {
            Some(mut buf) => {
                buf.clear();
                buf.reserve(capacity);
                buf
            }
            None => Vec::with_capacity(capacity),
        }
    }

    /// Number of buffers currently pooled (accounting tests only).
    #[cfg(test)]
    pub(crate) fn pool_len(&self) -> usize {
        self.pool.lock().len()
    }

    /// Return a finished payload buffer (typically one produced by
    /// [`RankCtx::recv`]) to this rank's recycle pool. Empty and
    /// oversized buffers are dropped instead, keeping the pool's
    /// footprint bounded in bytes as well as count.
    pub fn recycle_buffer(&self, buf: Vec<f64>) {
        if buf.capacity() == 0 || buf.capacity() > BUFFER_POOL_MAX_DOUBLES {
            return;
        }
        let mut pool = self.pool.lock();
        if pool.len() < BUFFER_POOL_CAP {
            pool.push(buf);
        }
    }

    /// Verify an incoming message's checksum before it is handed out or
    /// parked. A mismatch is in-flight corruption.
    fn verify(msg: &Message) -> std::result::Result<(), CommError> {
        if crc32_f64s(&msg.payload) != msg.checksum {
            return Err(CommError::Corrupt {
                from: msg.from,
                tag: msg.tag,
            });
        }
        Ok(())
    }

    /// Non-blocking receive from `from` under `tag`: the matching
    /// payload if it has already been delivered (mailbox or channel),
    /// `None` otherwise. Messages for other `(source, tag)` pairs
    /// encountered while draining the channel are parked in the mailbox,
    /// exactly as the blocking receive does. Corruption of *any* drained
    /// message (matching or stranger) surfaces here.
    pub fn try_recv(
        &self,
        from: usize,
        tag: u64,
    ) -> std::result::Result<Option<Vec<f64>>, CommError> {
        self.check_killed()?;
        if let Some(q) = self.mailbox.lock().get_mut(&(from, tag)) {
            if !q.is_empty() {
                return Ok(Some(q.remove(0)));
            }
        }
        while let Ok(msg) = self.receiver.try_recv() {
            Self::verify(&msg)?;
            if msg.from == from && msg.tag == tag {
                return Ok(Some(msg.payload));
            }
            self.mailbox
                .lock()
                .entry((msg.from, msg.tag))
                .or_default()
                .push(msg.payload);
        }
        Ok(None)
    }

    /// Blocking receive from `from` under `tag`. Out-of-order messages
    /// are parked until asked for. Bounded: returns
    /// [`CommError::RecvTimeout`] when no matching message arrives
    /// within the team's deadline.
    pub fn recv(&self, from: usize, tag: u64) -> std::result::Result<Vec<f64>, CommError> {
        self.recv_tracked(from, tag, None)
    }

    /// [`RankCtx::recv`], attributing any time spent *blocked* (payload
    /// not yet delivered) to `phase` in this rank's [`CommStats`]. A
    /// receive that finds its payload already here records exactly zero
    /// and never reads a clock.
    pub fn recv_in_phase(
        &self,
        from: usize,
        tag: u64,
        phase: &'static str,
    ) -> std::result::Result<Vec<f64>, CommError> {
        self.recv_tracked(from, tag, Some(phase))
    }

    fn recv_tracked(
        &self,
        from: usize,
        tag: u64,
        phase: Option<&'static str>,
    ) -> std::result::Result<Vec<f64>, CommError> {
        // Fast path: already delivered — no clock, no stats.
        if let Some(payload) = self.try_recv(from, tag)? {
            return Ok(payload);
        }
        let start = Instant::now();
        let deadline = start + self.recv_timeout;
        let payload = loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CommError::RecvTimeout { from, tag });
            }
            let msg = match self.receiver.recv_timeout(remaining) {
                Ok(msg) => msg,
                Err(RecvTimeoutError::Timeout) => {
                    return Err(CommError::RecvTimeout { from, tag });
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::Disconnected { rank: self.rank });
                }
            };
            Self::verify(&msg)?;
            if msg.from == from && msg.tag == tag {
                break msg.payload;
            }
            self.mailbox
                .lock()
                .entry((msg.from, msg.tag))
                .or_default()
                .push(msg.payload);
        };
        let waited = start.elapsed().as_secs_f64();
        let mut s = self.stats.lock();
        s.recv_wait_seconds += waited;
        if let Some(name) = phase {
            s.phase_mut(name).recv_wait_seconds += waited;
        }
        Ok(payload)
    }

    /// Record a completed post→complete overlap window for `phase` (used
    /// by the split-phase exchange plan).
    pub(crate) fn record_overlap_window(&self, phase: &'static str, seconds: f64) {
        let mut s = self.stats.lock();
        s.overlap_window_seconds += seconds;
        s.phase_mut(phase).overlap_window_seconds += seconds;
    }

    /// Global minimum across all ranks (BookLeaf's single per-step
    /// reduction, used for the time step). Bounded: a peer that never
    /// contributes surfaces as [`CommError::CollectiveTimeout`].
    pub fn allreduce_min(&self, value: f64) -> std::result::Result<f64, CommError> {
        self.check_killed()?;
        self.stats.lock().collectives += 1;
        Ok(self
            .collective
            .reduce(self.rank, value, self.recv_timeout)?
            .0)
    }

    /// Global sum across all ranks (used by diagnostics and tests).
    pub fn allreduce_sum(&self, value: f64) -> std::result::Result<f64, CommError> {
        self.check_killed()?;
        self.stats.lock().collectives += 1;
        Ok(self
            .collective
            .reduce(self.rank, value, self.recv_timeout)?
            .1)
    }

    /// Barrier.
    pub fn barrier(&self) -> std::result::Result<(), CommError> {
        self.check_killed()?;
        self.stats.lock().collectives += 1;
        self.collective.reduce(self.rank, 0.0, self.recv_timeout)?;
        Ok(())
    }

    /// Snapshot of this rank's communication counters.
    #[must_use]
    pub fn stats(&self) -> CommStats {
        self.stats.lock().clone()
    }
}

/// The team factory.
pub struct Typhon;

impl Typhon {
    /// Run `f` on `n_ranks` rank threads and collect the per-rank results
    /// in rank order. Panics inside a rank are converted into
    /// [`BookLeafError::RankPanic`]. Default [`TyphonOptions`]: generous
    /// timeout, no fault injection.
    pub fn run<R, F>(n_ranks: usize, f: F) -> Result<Vec<R>>
    where
        R: Send,
        F: Fn(&RankCtx) -> R + Sync,
    {
        Self::run_with(n_ranks, TyphonOptions::default(), f)
    }

    /// [`Typhon::run`] with explicit [`TyphonOptions`] — timeouts and a
    /// deterministic fault schedule.
    pub fn run_with<R, F>(n_ranks: usize, options: TyphonOptions, f: F) -> Result<Vec<R>>
    where
        R: Send,
        F: Fn(&RankCtx) -> R + Sync,
    {
        if n_ranks == 0 {
            return Err(BookLeafError::Comm(
                "team must have at least one rank".into(),
            ));
        }
        let mut senders = Vec::with_capacity(n_ranks);
        let mut receivers = Vec::with_capacity(n_ranks);
        for _ in 0..n_ranks {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let collective = Arc::new(Collective::new(n_ranks));

        let results: Vec<std::thread::Result<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = receivers
                .iter_mut()
                .enumerate()
                .map(|(rank, rx)| {
                    let ctx = RankCtx {
                        rank,
                        n_ranks,
                        senders: senders.clone(),
                        receiver: rx.take().expect("receiver taken once"),
                        mailbox: Mutex::new(HashMap::new()),
                        collective: Arc::clone(&collective),
                        phase: Mutex::new(0),
                        stats: Mutex::new(CommStats::default()),
                        pool: Mutex::new(Vec::new()),
                        recv_timeout: options.recv_timeout,
                        fault: options.fault_plan.clone(),
                        attempt: options.attempt,
                        step: Mutex::new(0),
                        armed: Mutex::new(None),
                        killed_at: Mutex::new(None),
                    };
                    let f = &f;
                    scope.spawn(move || f(&ctx))
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });

        let mut out = Vec::with_capacity(n_ranks);
        for (rank, r) in results.into_iter().enumerate() {
            match r {
                Ok(v) => out.push(v),
                Err(payload) => {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "unknown panic".into());
                    return Err(BookLeafError::RankPanic { rank, message });
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn team_runs_and_orders_results() {
        let out = Typhon::run(4, |ctx| ctx.rank() * 10).unwrap();
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn zero_ranks_rejected() {
        assert!(Typhon::run(0, |_| ()).is_err());
    }

    #[test]
    fn ring_send_recv() {
        let out = Typhon::run(3, |ctx| {
            let to = (ctx.rank() + 1) % 3;
            let from = (ctx.rank() + 2) % 3;
            let tag = ctx.next_tag();
            ctx.send(to, tag, vec![ctx.rank() as f64]).unwrap();
            let got = ctx.recv(from, tag).unwrap();
            got[0] as usize
        })
        .unwrap();
        assert_eq!(out, vec![2, 0, 1]);
    }

    #[test]
    fn out_of_order_tags_are_parked() {
        // Rank 0 sends two messages with different tags; rank 1 receives
        // them in the opposite order.
        let out = Typhon::run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, vec![7.0]).unwrap();
                ctx.send(1, 8, vec![8.0]).unwrap();
                0.0
            } else {
                let b = ctx.recv(0, 8).unwrap();
                let a = ctx.recv(0, 7).unwrap();
                a[0] * 10.0 + b[0]
            }
        })
        .unwrap();
        assert_eq!(out[1], 78.0);
    }

    #[test]
    fn allreduce_min_and_sum() {
        let out = Typhon::run(5, |ctx| {
            let v = (ctx.rank() + 1) as f64;
            let mn = ctx.allreduce_min(v).unwrap();
            let sm = ctx.allreduce_sum(v).unwrap();
            (mn, sm)
        })
        .unwrap();
        for (mn, sm) in out {
            assert_eq!(mn, 1.0);
            assert_eq!(sm, 15.0);
        }
    }

    #[test]
    fn repeated_collectives() {
        let out = Typhon::run(3, |ctx| {
            let mut acc = 0.0;
            for i in 0..100 {
                acc += ctx.allreduce_min((ctx.rank() + i) as f64).unwrap();
            }
            acc
        })
        .unwrap();
        // min over ranks of (rank + i) = i; sum over i of i = 4950.
        for v in out {
            assert_eq!(v, 4950.0);
        }
    }

    #[test]
    fn rank_panic_is_reported() {
        let err = Typhon::run(2, |ctx| {
            if ctx.rank() == 1 {
                panic!("injected failure");
            }
            ctx.barrier_free_work()
        })
        .unwrap_err();
        match err {
            BookLeafError::RankPanic { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("injected failure"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn stats_count_traffic() {
        let out = Typhon::run(2, |ctx| {
            let tag = ctx.next_tag();
            if ctx.rank() == 0 {
                ctx.send(1, tag, vec![1.0, 2.0, 3.0]).unwrap();
            } else {
                ctx.recv(0, tag).unwrap();
            }
            ctx.stats()
        })
        .unwrap();
        assert_eq!(out[0].messages_sent, 1);
        assert_eq!(out[0].doubles_sent, 3);
        assert_eq!(out[1].messages_sent, 0);
    }

    #[test]
    fn phase_attributed_sends_feed_the_breakdown() {
        let out = Typhon::run(2, |ctx| {
            let t0 = ctx.next_tag();
            let t1 = ctx.next_tag();
            let t2 = ctx.next_tag();
            if ctx.rank() == 0 {
                ctx.send_in_phase(1, t0, vec![1.0, 2.0], "alpha").unwrap();
                ctx.send_in_phase(1, t1, vec![3.0], "beta").unwrap();
                ctx.send(1, t2, vec![4.0]).unwrap();
            } else {
                ctx.recv(0, t0).unwrap();
                ctx.recv(0, t1).unwrap();
                ctx.recv(0, t2).unwrap();
            }
            ctx.stats()
        })
        .unwrap();
        let s = &out[0];
        // Totals cover attributed and unattributed sends alike.
        assert_eq!(s.messages_sent, 3);
        assert_eq!(s.doubles_sent, 4);
        let alpha = s.phase("alpha").unwrap();
        assert_eq!((alpha.messages_sent, alpha.doubles_sent), (1, 2));
        let beta = s.phase("beta").unwrap();
        assert_eq!((beta.messages_sent, beta.doubles_sent), (1, 1));
    }

    #[test]
    fn collectives_are_counted() {
        let out = Typhon::run(3, |ctx| {
            ctx.allreduce_min(1.0).unwrap();
            ctx.allreduce_sum(1.0).unwrap();
            ctx.barrier().unwrap();
            ctx.stats()
        })
        .unwrap();
        for s in out {
            assert_eq!(s.collectives, 3);
        }
    }

    #[test]
    fn buffer_pool_recycles_capacity() {
        let out = Typhon::run(1, |ctx| {
            let mut b = ctx.take_buffer(100);
            b.resize(100, 0.0);
            let cap = b.capacity();
            ctx.recycle_buffer(b);
            let again = ctx.take_buffer(10);
            (cap, again.capacity(), again.len())
        })
        .unwrap();
        let (cap, cap_again, len) = out[0];
        assert!(cap >= 100);
        assert_eq!(cap_again, cap, "recycled buffer should be reused");
        assert_eq!(len, 0, "recycled buffer must come back cleared");
    }

    #[test]
    fn take_buffer_is_best_fit() {
        Typhon::run(1, |ctx| {
            // Pool two buffers: a small one and a big one.
            let mut small = ctx.take_buffer(100);
            small.resize(100, 0.0);
            let small_cap = small.capacity();
            let mut big = ctx.take_buffer(10_000);
            big.resize(10_000, 0.0);
            let big_cap = big.capacity();
            assert!(big_cap > small_cap);
            ctx.recycle_buffer(small);
            ctx.recycle_buffer(big);
            assert_eq!(ctx.pool_len(), 2);
            // A tiny request must take the *smallest sufficient* buffer,
            // not burn the big one.
            let got = ctx.take_buffer(50);
            assert_eq!(
                got.capacity(),
                small_cap,
                "best fit picked the wrong buffer"
            );
            // The big buffer is still pooled for the next big request.
            let got_big = ctx.take_buffer(10_000);
            assert_eq!(got_big.capacity(), big_cap);
        })
        .unwrap();
    }

    #[test]
    fn take_buffer_grows_the_largest_when_none_suffices() {
        Typhon::run(1, |ctx| {
            let mut small = ctx.take_buffer(16);
            small.resize(16, 0.0);
            let mut mid = ctx.take_buffer(64);
            mid.resize(64, 0.0);
            ctx.recycle_buffer(small);
            ctx.recycle_buffer(mid);
            assert_eq!(ctx.pool_len(), 2);
            // Nothing pooled covers 1000 doubles: the largest pooled
            // buffer is taken (and grown), leaving the small one.
            let got = ctx.take_buffer(1000);
            assert!(got.capacity() >= 1000);
            assert_eq!(ctx.pool_len(), 1);
            let leftover = ctx.take_buffer(1);
            assert!(leftover.capacity() <= 16 * 2, "small buffer should remain");
        })
        .unwrap();
    }

    #[test]
    fn pool_count_is_capped() {
        Typhon::run(1, |ctx| {
            for _ in 0..(2 * BUFFER_POOL_CAP) {
                ctx.recycle_buffer(vec![1.0]);
            }
            assert_eq!(ctx.pool_len(), BUFFER_POOL_CAP);
        })
        .unwrap();
    }

    #[test]
    fn recv_recycle_take_round_trip_does_not_allocate() {
        let out = Typhon::run(2, |ctx| {
            if ctx.rank() == 0 {
                // Two rounds: the second send reuses the buffer that came
                // back from the first round's receive on rank 0's side.
                let tag = ctx.next_tag();
                let mut payload = ctx.take_buffer(256);
                payload.resize(256, 1.0);
                ctx.send(1, tag, payload).unwrap();
                ctx.barrier().unwrap();
                true
            } else {
                let tag = ctx.next_tag();
                let payload = ctx.recv(0, tag).unwrap();
                let ptr = payload.as_ptr();
                let cap = payload.capacity();
                ctx.recycle_buffer(payload);
                // Taking a buffer of the same size must hand back the
                // very same allocation — pointer-identical, no alloc.
                let again = ctx.take_buffer(256);
                let same = again.as_ptr() == ptr && again.capacity() == cap;
                ctx.barrier().unwrap();
                same
            }
        })
        .unwrap();
        assert!(out[1], "recv → recycle → take did not reuse the allocation");
    }

    #[test]
    fn blocked_recv_records_wait_seconds() {
        let out = Typhon::run(2, |ctx| {
            let tag = ctx.next_tag();
            if ctx.rank() == 0 {
                ctx.barrier().unwrap();
                std::thread::sleep(std::time::Duration::from_millis(20));
                ctx.send(1, tag, vec![1.0]).unwrap();
                ctx.stats()
            } else {
                ctx.barrier().unwrap();
                // The sender is still sleeping: this receive must block
                // and the blocked time must be attributed.
                ctx.recv_in_phase(0, tag, "late").unwrap();
                ctx.stats()
            }
        })
        .unwrap();
        assert_eq!(out[0].recv_wait_seconds, 0.0, "sender never waited");
        assert!(
            out[1].recv_wait_seconds > 0.0,
            "blocked receive recorded no wait"
        );
        let late = out[1].phase("late").unwrap();
        assert!(late.recv_wait_seconds > 0.0);
        assert!((late.recv_wait_seconds - out[1].recv_wait_seconds).abs() < 1e-9);
    }

    #[test]
    fn delivered_recv_records_zero_wait() {
        let out = Typhon::run(2, |ctx| {
            let tag = ctx.next_tag();
            if ctx.rank() == 0 {
                ctx.send(1, tag, vec![1.0]).unwrap();
                ctx.barrier().unwrap();
                0.0
            } else {
                // The barrier guarantees the message arrived before the
                // receive is posted: the fast path must record *exactly*
                // zero wait (it never reads a clock).
                ctx.barrier().unwrap();
                ctx.recv_in_phase(0, tag, "early").unwrap();
                let s = ctx.stats();
                assert!(
                    s.phase("early").is_none()
                        || s.phase("early").unwrap().recv_wait_seconds == 0.0
                );
                s.recv_wait_seconds
            }
        })
        .unwrap();
        assert_eq!(out[1], 0.0);
    }

    #[test]
    fn try_recv_is_non_blocking_and_parks_strangers() {
        let out = Typhon::run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 5, vec![5.0]).unwrap();
                ctx.send(1, 9, vec![9.0]).unwrap();
                ctx.barrier().unwrap();
                0.0
            } else {
                assert!(
                    ctx.try_recv(0, 99).unwrap().is_none(),
                    "no such message yet"
                );
                ctx.barrier().unwrap();
                // Both messages are in; asking for tag 9 first drains
                // tag 5 into the mailbox.
                let nine = ctx.try_recv(0, 9).unwrap().expect("tag 9 delivered");
                let five = ctx
                    .try_recv(0, 5)
                    .unwrap()
                    .expect("tag 5 parked in mailbox");
                nine[0] * 10.0 + five[0]
            }
        })
        .unwrap();
        assert_eq!(out[1], 95.0);
    }

    #[test]
    fn oversized_buffers_are_not_pooled() {
        let out = Typhon::run(1, |ctx| {
            let big = ctx.take_buffer(BUFFER_POOL_MAX_DOUBLES + 1);
            let big_cap = big.capacity();
            ctx.recycle_buffer(big);
            // The oversized buffer must have been dropped, not recycled.
            ctx.take_buffer(1).capacity() < big_cap
        })
        .unwrap();
        assert!(out[0]);
    }

    // ---- fault injection ------------------------------------------------

    use crate::fault::FaultPlan;

    /// Short deadline for tests that *expect* a timeout: long enough for
    /// healthy traffic, short enough to keep the suite fast.
    fn fast(plan: FaultPlan) -> TyphonOptions {
        TyphonOptions::with_faults(plan).timeout(Duration::from_millis(250))
    }

    #[test]
    fn corrupt_fault_surfaces_at_the_receiver() {
        let plan = FaultPlan::new(1).corrupt(0, 0);
        let out = Typhon::run_with(2, fast(plan), |ctx| {
            ctx.begin_step(0)?;
            let tag = ctx.next_tag();
            if ctx.rank() == 0 {
                ctx.send(1, tag, vec![1.0, 2.0, 3.0])?;
                Ok(0.0)
            } else {
                ctx.recv(0, tag).map(|p| p[0])
            }
        })
        .unwrap();
        assert_eq!(out[0], Ok(0.0), "sender proceeds normally");
        assert_eq!(
            out[1],
            Err(CommError::Corrupt { from: 0, tag: 0 }),
            "receiver must detect the bit flip"
        );
    }

    #[test]
    fn corrupt_fault_on_empty_payload_still_detected() {
        let plan = FaultPlan::new(1).corrupt(0, 0);
        let out = Typhon::run_with(2, fast(plan), |ctx| {
            ctx.begin_step(0)?;
            let tag = ctx.next_tag();
            if ctx.rank() == 0 {
                ctx.send(1, tag, Vec::new())?;
                Ok(0)
            } else {
                ctx.recv(0, tag).map(|p| p.len())
            }
        })
        .unwrap();
        assert_eq!(out[1], Err(CommError::Corrupt { from: 0, tag: 0 }));
    }

    #[test]
    fn dropped_message_times_out_typed() {
        let plan = FaultPlan::new(2).drop_message(0, 0);
        let out = Typhon::run_with(2, fast(plan), |ctx| {
            ctx.begin_step(0)?;
            let tag = ctx.next_tag();
            if ctx.rank() == 0 {
                ctx.send(1, tag, vec![42.0])?;
                Ok(0.0)
            } else {
                ctx.recv(0, tag).map(|p| p[0])
            }
        })
        .unwrap();
        assert_eq!(out[1], Err(CommError::RecvTimeout { from: 0, tag: 0 }));
    }

    #[test]
    fn delayed_message_still_arrives() {
        let plan = FaultPlan::new(3).delay(0, 0);
        let out = Typhon::run_with(2, fast(plan), |ctx| {
            ctx.begin_step(0)?;
            let tag = ctx.next_tag();
            if ctx.rank() == 0 {
                ctx.send(1, tag, vec![42.0])?;
                Ok(0.0)
            } else {
                ctx.recv(0, tag).map(|p| p[0])
            }
        })
        .unwrap();
        assert_eq!(out[1], Ok(42.0), "a delay alone must not fail the run");
    }

    #[test]
    fn killed_rank_and_peers_all_fail_typed() {
        let plan = FaultPlan::new(4).kill(1, 1);
        let out = Typhon::run_with(2, fast(plan), |ctx| -> std::result::Result<(), CommError> {
            for step in 0..3 {
                ctx.begin_step(step)?;
                let tag = ctx.next_tag();
                let peer = 1 - ctx.rank();
                ctx.send(peer, tag, vec![step as f64])?;
                ctx.recv(peer, tag)?;
                ctx.allreduce_min(step as f64)?;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(
            out[1],
            Err(CommError::Killed { rank: 1, step: 1 }),
            "the killed rank learns of its own death at the step top"
        );
        // The survivor fails *typed and bounded* — at the recv or the
        // collective, depending on timing — never hangs, never panics.
        let survivor = out[0].clone().unwrap_err();
        assert!(
            matches!(
                survivor,
                CommError::RecvTimeout { from: 1, .. }
                    | CommError::CollectiveTimeout { rank: 0 }
                    | CommError::RankUnreachable { to: 1 }
            ),
            "unexpected survivor error: {survivor:?}"
        );
    }

    #[test]
    fn send_to_dead_rank_is_unreachable() {
        // Rank 1 exits immediately; rank 0 waits for it to be gone (via
        // the channel disconnect visible in its own recv) then sends.
        let out = Typhon::run_with(
            2,
            TyphonOptions::default().timeout(Duration::from_millis(100)),
            |ctx| {
                if ctx.rank() == 1 {
                    return Ok(());
                }
                // Wait out the receive deadline: by then rank 1 has exited
                // and dropped its receiver.
                let _ = ctx.recv(1, 0);
                match ctx.send(1, 1, vec![1.0]) {
                    Err(CommError::RankUnreachable { to: 1 }) => Ok(()),
                    other => Err(CommError::Disconnected {
                        rank: other.is_ok() as usize,
                    }),
                }
            },
        )
        .unwrap();
        assert_eq!(out[0], Ok(()));
    }

    #[test]
    fn fault_errors_are_identical_across_runs() {
        let run = || {
            let plan = FaultPlan::new(7).corrupt(0, 0).kill(2, 1);
            Typhon::run_with(
                2,
                fast(plan),
                |ctx| -> std::result::Result<f64, CommError> {
                    let mut acc = 0.0;
                    for step in 0..4 {
                        ctx.begin_step(step)?;
                        let tag = ctx.next_tag();
                        let peer = 1 - ctx.rank();
                        ctx.send(peer, tag, vec![step as f64])?;
                        acc += ctx.recv(peer, tag)?[0];
                    }
                    Ok(acc)
                },
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same fault schedule must fail byte-identically");
        assert_eq!(a[1], Err(CommError::Corrupt { from: 0, tag: 0 }));
    }

    #[test]
    fn attempt_scoped_fault_does_not_refire() {
        let plan = FaultPlan::new(5).drop_message(0, 0);
        let round = |attempt: usize| {
            Typhon::run_with(
                2,
                fast(plan.clone()).on_attempt(attempt),
                |ctx| -> std::result::Result<f64, CommError> {
                    ctx.begin_step(0)?;
                    let tag = ctx.next_tag();
                    let peer = 1 - ctx.rank();
                    ctx.send(peer, tag, vec![1.0])?;
                    ctx.recv(peer, tag).map(|p| p[0])
                },
            )
            .unwrap()
        };
        assert_eq!(round(0)[1], Err(CommError::RecvTimeout { from: 0, tag: 0 }));
        assert_eq!(round(1)[1], Ok(1.0), "attempt 1 must run clean");
    }

    #[test]
    fn operations_after_kill_keep_failing() {
        let plan = FaultPlan::new(6).kill(0, 0);
        let out = Typhon::run_with(1, fast(plan), |ctx| {
            let first = ctx.begin_step(0);
            let second = ctx.send(0, 0, vec![1.0]);
            let third = ctx.allreduce_min(1.0).map(|_| ());
            let fourth = ctx.try_recv(0, 0).map(|_| ());
            (first, second, third, fourth)
        })
        .unwrap();
        let killed = Err(CommError::Killed { rank: 0, step: 0 });
        assert_eq!(out[0].0, killed);
        assert_eq!(out[0].1, killed);
        assert_eq!(out[0].2, killed);
        assert_eq!(out[0].3, killed);
    }

    impl RankCtx {
        /// Helper for the panic test: something innocuous that does not
        /// block on the panicking peer.
        fn barrier_free_work(&self) -> f64 {
            42.0
        }
    }
}
