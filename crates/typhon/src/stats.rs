//! Communication counters.
//!
//! The cluster performance model (Figs 3 and 4) charges wire time per
//! message and per byte; these counters, recorded by the real in-process
//! exchanges, supply the message/volume terms.

/// Per-rank communication totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point messages sent.
    pub messages_sent: u64,
    /// Total `f64` values sent.
    pub doubles_sent: u64,
    /// Collective operations participated in.
    pub collectives: u64,
}

impl CommStats {
    /// Bytes on the wire (8 bytes per double, headers ignored).
    #[must_use]
    pub fn bytes_sent(&self) -> u64 {
        self.doubles_sent * 8
    }

    /// Merge another rank's counters (for team-wide totals).
    #[must_use]
    pub fn merged(&self, other: &CommStats) -> CommStats {
        CommStats {
            messages_sent: self.messages_sent + other.messages_sent,
            doubles_sent: self.doubles_sent + other.doubles_sent,
            collectives: self.collectives + other.collectives,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_are_eight_per_double() {
        let s = CommStats {
            messages_sent: 1,
            doubles_sent: 10,
            collectives: 0,
        };
        assert_eq!(s.bytes_sent(), 80);
    }

    #[test]
    fn merge_adds() {
        let a = CommStats {
            messages_sent: 1,
            doubles_sent: 2,
            collectives: 3,
        };
        let b = CommStats {
            messages_sent: 10,
            doubles_sent: 20,
            collectives: 30,
        };
        let m = a.merged(&b);
        assert_eq!(
            m,
            CommStats {
                messages_sent: 11,
                doubles_sent: 22,
                collectives: 33
            }
        );
    }
}
