//! Communication counters.
//!
//! The cluster performance model (Figs 3 and 4) charges wire time per
//! message and per byte; these counters, recorded by the real in-process
//! exchanges, supply the message/volume terms. Besides the per-rank
//! totals, traffic sent through a named exchange phase (see
//! [`crate::plan`]) is broken down per phase, so the models — and the
//! scaling bench — can attribute wire cost to the algorithmic step that
//! incurred it.
//!
//! Two wall-clock attributions ride along with the byte counters:
//!
//! * **`recv_wait_seconds`** — time a rank spent *blocked* in a receive
//!   because the matching message had not arrived yet. Receives that
//!   find their payload already delivered (mailbox or channel) record
//!   exactly `0.0` and never touch a clock, so the measurement is free
//!   when nobody waits. This is the latency the overlapped exchange
//!   exists to hide.
//! * **`overlap_window_seconds`** — for split-phase executions (see
//!   [`crate::plan::HaloPlan::post`]), the wall time between posting a
//!   phase's sends and starting to complete its receives: the window in
//!   which computation ran while messages were in flight. A non-split
//!   `execute` completes immediately after posting, so its window is
//!   ≈ 0 — the two columns together show how much latency the overlap
//!   actually covered.

/// Traffic attributed to one named exchange phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    /// Phase name (as registered with the exchange plan).
    pub name: &'static str,
    /// Point-to-point messages sent during this phase.
    pub messages_sent: u64,
    /// Total `f64` values sent during this phase.
    pub doubles_sent: u64,
    /// Seconds spent blocked in receives for this phase (0 when every
    /// payload had already arrived).
    pub recv_wait_seconds: f64,
    /// Seconds between posting this phase's sends and completing its
    /// receives (the communication/computation overlap window).
    pub overlap_window_seconds: f64,
}

/// Per-rank communication totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommStats {
    /// Point-to-point messages sent.
    pub messages_sent: u64,
    /// Total `f64` values sent.
    pub doubles_sent: u64,
    /// Collective operations participated in.
    pub collectives: u64,
    /// Seconds spent blocked in receives (all phases and ad-hoc traffic).
    pub recv_wait_seconds: f64,
    /// Seconds of open post→complete windows (all phases).
    pub overlap_window_seconds: f64,
    /// Per-phase breakdown of the point-to-point traffic. Only sends
    /// attributed to a phase (via [`crate::RankCtx::send_in_phase`])
    /// appear here; the totals above always cover everything.
    pub phases: Vec<PhaseStats>,
}

impl CommStats {
    /// Bytes on the wire (8 bytes per double, headers ignored).
    #[must_use]
    pub fn bytes_sent(&self) -> u64 {
        self.doubles_sent * 8
    }

    /// The breakdown entry for `name`, if any traffic was attributed.
    #[must_use]
    pub fn phase(&self, name: &str) -> Option<&PhaseStats> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// The breakdown entry for `name`, created on first use.
    pub fn phase_mut(&mut self, name: &'static str) -> &mut PhaseStats {
        if let Some(i) = self.phases.iter().position(|p| p.name == name) {
            return &mut self.phases[i];
        }
        self.phases.push(PhaseStats {
            name,
            messages_sent: 0,
            doubles_sent: 0,
            recv_wait_seconds: 0.0,
            overlap_window_seconds: 0.0,
        });
        self.phases.last_mut().expect("just pushed")
    }

    /// Merge another rank's counters (for team-wide totals). Phase
    /// entries merge by name; `other`'s unseen phases are appended.
    /// Wait and window seconds add up — the team-wide figures are
    /// cumulative rank-seconds, the convention MPI profilers use.
    #[must_use]
    pub fn merged(&self, other: &CommStats) -> CommStats {
        let mut out = self.clone();
        out.messages_sent += other.messages_sent;
        out.doubles_sent += other.doubles_sent;
        out.collectives += other.collectives;
        out.recv_wait_seconds += other.recv_wait_seconds;
        out.overlap_window_seconds += other.overlap_window_seconds;
        for p in &other.phases {
            let mine = out.phase_mut(p.name);
            mine.messages_sent += p.messages_sent;
            mine.doubles_sent += p.doubles_sent;
            mine.recv_wait_seconds += p.recv_wait_seconds;
            mine.overlap_window_seconds += p.overlap_window_seconds;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_are_eight_per_double() {
        let s = CommStats {
            messages_sent: 1,
            doubles_sent: 10,
            ..CommStats::default()
        };
        assert_eq!(s.bytes_sent(), 80);
    }

    #[test]
    fn merge_adds() {
        let a = CommStats {
            messages_sent: 1,
            doubles_sent: 2,
            collectives: 3,
            recv_wait_seconds: 0.5,
            overlap_window_seconds: 0.25,
            phases: Vec::new(),
        };
        let b = CommStats {
            messages_sent: 10,
            doubles_sent: 20,
            collectives: 30,
            recv_wait_seconds: 1.5,
            overlap_window_seconds: 0.75,
            phases: Vec::new(),
        };
        let m = a.merged(&b);
        assert_eq!(m.messages_sent, 11);
        assert_eq!(m.doubles_sent, 22);
        assert_eq!(m.collectives, 33);
        assert!((m.recv_wait_seconds - 2.0).abs() < 1e-12);
        assert!((m.overlap_window_seconds - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phases_merge_by_name() {
        let mut a = CommStats::default();
        {
            let p = a.phase_mut("pre_viscosity");
            p.messages_sent = 2;
            p.doubles_sent = 100;
            p.recv_wait_seconds = 0.25;
        }
        let mut b = CommStats::default();
        {
            let p = b.phase_mut("pre_viscosity");
            p.messages_sent = 3;
            p.doubles_sent = 50;
            p.recv_wait_seconds = 0.75;
            p.overlap_window_seconds = 2.0;
        }
        {
            let p = b.phase_mut("post_remap");
            p.messages_sent = 1;
            p.doubles_sent = 7;
        }
        let m = a.merged(&b);
        let visc = m.phase("pre_viscosity").unwrap();
        assert_eq!(visc.messages_sent, 5);
        assert_eq!(visc.doubles_sent, 150);
        assert!((visc.recv_wait_seconds - 1.0).abs() < 1e-12);
        assert!((visc.overlap_window_seconds - 2.0).abs() < 1e-12);
        let remap = m.phase("post_remap").unwrap();
        assert_eq!(remap.messages_sent, 1);
        assert!(m.phase("never_ran").is_none());
    }

    #[test]
    fn phase_mut_is_idempotent_per_name() {
        let mut s = CommStats::default();
        s.phase_mut("a").messages_sent += 1;
        s.phase_mut("a").messages_sent += 1;
        s.phase_mut("b").messages_sent += 1;
        assert_eq!(s.phases.len(), 2);
        assert_eq!(s.phase("a").unwrap().messages_sent, 2);
    }

    #[test]
    fn fresh_stats_report_zero_wait() {
        let s = CommStats::default();
        assert_eq!(s.recv_wait_seconds, 0.0);
        assert_eq!(s.overlap_window_seconds, 0.0);
    }
}
