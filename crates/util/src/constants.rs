//! Numerical constants shared across the workspace.
//!
//! These mirror the defaults of the BookLeaf reference implementation's
//! input namelists; individual decks may override them.

/// Default CFL safety factor applied to the sound-speed time-step limit.
pub const CFL_SF: f64 = 0.5;

/// Default divergence safety factor applied to the volume-change limit.
pub const DIV_SF: f64 = 0.25;

/// Maximum factor by which the time step may grow between steps.
pub const DT_GROWTH: f64 = 1.02;

/// Default initial time step.
pub const DT_INITIAL: f64 = 1.0e-5;

/// Default maximum time step.
pub const DT_MAX: f64 = 1.0e-1;

/// Default minimum time step; collapse below this is a fatal error.
pub const DT_MIN: f64 = 1.0e-12;

/// Linear (first-order) artificial viscosity coefficient (Caramana et al.).
pub const CQ1: f64 = 0.5;

/// Quadratic (second-order) artificial viscosity coefficient.
pub const CQ2: f64 = 0.75;

/// Hourglass filter coefficient (Hancock-style damping).
pub const KAPPA_HG: f64 = 0.7;

/// Sub-zonal pressure restoring coefficient (Caramana–Shashkov).
pub const ZETA_SZ: f64 = 0.3;

/// Cut-off below which densities are treated as void.
pub const DENSITY_CUT: f64 = 1.0e-8;

/// Cut-off for velocity magnitudes treated as zero in limiters.
pub const ZERO_CUT: f64 = 1.0e-40;

/// Number of corners (= nodes = faces) of a quadrilateral element.
pub const NCORN: usize = 4;

#[cfg(test)]
mod tests {
    // These sanity tests intentionally assert on the constants above —
    // they exist to fail loudly if anyone edits a default out of range.
    #![allow(clippy::assertions_on_constants)]
    use super::*;

    #[test]
    fn safety_factors_in_unit_interval() {
        assert!(CFL_SF > 0.0 && CFL_SF <= 1.0);
        assert!(DIV_SF > 0.0 && DIV_SF <= 1.0);
    }

    #[test]
    fn dt_bounds_ordered() {
        assert!(DT_MIN < DT_INITIAL);
        assert!(DT_INITIAL < DT_MAX);
        assert!(DT_GROWTH > 1.0);
    }

    #[test]
    fn viscosity_coefficients_positive() {
        assert!(CQ1 > 0.0);
        assert!(CQ2 > 0.0);
    }
}
