//! Typed error hierarchy for BookLeaf-rs.
//!
//! BookLeaf's Fortran reference aborts on fatal conditions (tangled mesh,
//! vanished time step…). The Rust port surfaces the same conditions as
//! values so that drivers, tests and the failure-injection suite can assert
//! on them.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BookLeafError>;

/// Everything that can be wrong with an input deck, as a typed value.
///
/// Produced by `Deck::validate` and by the text-deck parser
/// (`bookleaf_core::decks::from_str`); every build path — the
/// `Simulation` builder, the deprecated `Driver`/`run_distributed`
/// wrappers, text decks — funnels through these variants rather than a
/// stringly error, so tests and tools can distinguish a malformed file
/// (line-anchored) from an inconsistent programmatic deck.
#[derive(Debug, Clone, PartialEq)]
pub enum DeckError {
    /// Field-array lengths do not match the deck's mesh.
    Shape {
        /// Deck name.
        deck: String,
        /// Which array, and the expected/actual lengths.
        message: String,
    },
    /// The deck's mesh or material table violates an invariant.
    Invalid {
        /// Deck name.
        deck: String,
        /// The underlying mesh/material error.
        source: Box<BookLeafError>,
    },
    /// A text deck failed to parse; anchored to a 1-based source line.
    Text {
        /// 1-based line in the deck text.
        line: usize,
        /// What was wrong on that line.
        message: String,
    },
    /// An option combination that cannot run (no source line available:
    /// the deck was built programmatically).
    Config {
        /// What is inconsistent.
        message: String,
    },
}

impl fmt::Display for DeckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeckError::Shape { deck, message } => write!(f, "deck `{deck}`: {message}"),
            DeckError::Invalid { deck, source } => write!(f, "deck `{deck}`: {source}"),
            DeckError::Text { line, message } => write!(f, "line {line}: {message}"),
            DeckError::Config { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for DeckError {}

impl From<DeckError> for BookLeafError {
    fn from(e: DeckError) -> Self {
        BookLeafError::Deck(e)
    }
}

/// Everything that can go wrong loading or applying a checkpoint file,
/// as a typed value.
///
/// Produced by the checkpoint codec in `bookleaf_core::output` and by
/// `SimulationBuilder::resume`. The failure-injection suite pins the
/// contract that a damaged file — truncated, bit-flipped, stale-version,
/// wrong problem — always surfaces as one of these variants and never a
/// panic.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The underlying file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The OS error text.
        message: String,
    },
    /// The byte stream ended before the section named here.
    Truncated {
        /// Which part of the format was cut short.
        what: &'static str,
    },
    /// The leading magic bytes are not a BookLeaf-rs checkpoint.
    BadMagic,
    /// The file's format version is not one this reader understands.
    UnsupportedVersion {
        /// Version stored in the file.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The payload is internally inconsistent (failed CRC, implausible
    /// counts, trailing garbage, unparsable embedded deck…).
    Corrupt {
        /// What check failed.
        what: String,
    },
    /// The checkpoint is well-formed but does not fit the target
    /// simulation (different problem, resolution, or field shapes).
    DeckMismatch {
        /// What disagrees.
        message: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, message } => {
                write!(f, "checkpoint file {path}: {message}")
            }
            CheckpointError::Truncated { what } => {
                write!(f, "checkpoint truncated in {what}")
            }
            CheckpointError::BadMagic => {
                write!(f, "not a BookLeaf-rs checkpoint (bad magic)")
            }
            CheckpointError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "checkpoint format version {found} unsupported (this build reads \
                     version {supported})"
                )
            }
            CheckpointError::Corrupt { what } => write!(f, "checkpoint corrupt: {what}"),
            CheckpointError::DeckMismatch { message } => {
                write!(f, "checkpoint does not match the simulation: {message}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CheckpointError> for BookLeafError {
    fn from(e: CheckpointError) -> Self {
        BookLeafError::Checkpoint(e)
    }
}

/// Every fatal condition a BookLeaf run can hit.
#[derive(Debug, Clone, PartialEq)]
pub enum BookLeafError {
    /// An element's volume went non-positive (tangled / inverted mesh).
    /// Carries the global element index and the offending volume.
    NegativeVolume { element: usize, volume: f64 },
    /// The computed time step fell below the configured minimum.
    TimestepCollapse { dt: f64, dt_min: f64, cause: String },
    /// A thermodynamic state left the valid region of its EoS
    /// (e.g. negative density or internal energy where disallowed).
    InvalidState { element: usize, what: String },
    /// Mesh construction or connectivity invariants were violated.
    MeshTopology(String),
    /// An input deck was inconsistent or out of range (typed detail).
    Deck(DeckError),
    /// A miscellaneous input/configuration problem (snapshots, CLI…).
    InvalidDeck(String),
    /// Domain decomposition failed (empty part, unbalanced beyond limits…).
    Partition(String),
    /// A checkpoint file could not be read, parsed or applied.
    Checkpoint(CheckpointError),
    /// A communication-layer failure (mismatched schedule, dead rank…).
    Comm(String),
    /// A rank thread panicked during a distributed run.
    RankPanic { rank: usize, message: String },
}

impl fmt::Display for BookLeafError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BookLeafError::NegativeVolume { element, volume } => {
                write!(
                    f,
                    "element {element} has non-positive volume {volume:.6e} (mesh tangled)"
                )
            }
            BookLeafError::TimestepCollapse { dt, dt_min, cause } => {
                write!(f, "time step {dt:.6e} below minimum {dt_min:.6e} ({cause})")
            }
            BookLeafError::InvalidState { element, what } => {
                write!(
                    f,
                    "invalid thermodynamic state in element {element}: {what}"
                )
            }
            BookLeafError::MeshTopology(msg) => write!(f, "mesh topology error: {msg}"),
            BookLeafError::Deck(e) => write!(f, "invalid input deck: {e}"),
            BookLeafError::InvalidDeck(msg) => write!(f, "invalid input deck: {msg}"),
            BookLeafError::Partition(msg) => write!(f, "partitioning error: {msg}"),
            BookLeafError::Checkpoint(e) => write!(f, "{e}"),
            BookLeafError::Comm(msg) => write!(f, "communication error: {msg}"),
            BookLeafError::RankPanic { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for BookLeafError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_key_fields() {
        let e = BookLeafError::NegativeVolume {
            element: 42,
            volume: -1.0,
        };
        let s = e.to_string();
        assert!(s.contains("42"));
        assert!(s.contains("tangled"));
    }

    #[test]
    fn timestep_collapse_reports_cause() {
        let e = BookLeafError::TimestepCollapse {
            dt: 1e-12,
            dt_min: 1e-8,
            cause: "CFL in element 7".into(),
        };
        assert!(e.to_string().contains("CFL in element 7"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = BookLeafError::MeshTopology("x".into());
        let b = BookLeafError::MeshTopology("x".into());
        assert_eq!(a, b);
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(BookLeafError::Comm("late".into()));
        assert!(e.to_string().contains("late"));
    }
}
