//! Typed error hierarchy for BookLeaf-rs.
//!
//! BookLeaf's Fortran reference aborts on fatal conditions (tangled mesh,
//! vanished time step…). The Rust port surfaces the same conditions as
//! values so that drivers, tests and the failure-injection suite can assert
//! on them.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BookLeafError>;

/// Everything that can be wrong with an input deck, as a typed value.
///
/// Produced by `Deck::validate` and by the text-deck parser
/// (`bookleaf_core::decks::from_str`); every build path — the
/// `Simulation` builder, text decks — funnels through these variants
/// rather than a stringly error, so tests and tools can distinguish a
/// malformed file (line-anchored) from an inconsistent programmatic
/// deck.
#[derive(Debug, Clone, PartialEq)]
pub enum DeckError {
    /// Field-array lengths do not match the deck's mesh.
    Shape {
        /// Deck name.
        deck: String,
        /// Which array, and the expected/actual lengths.
        message: String,
    },
    /// The deck's mesh or material table violates an invariant.
    Invalid {
        /// Deck name.
        deck: String,
        /// The underlying mesh/material error.
        source: Box<BookLeafError>,
    },
    /// A text deck failed to parse; anchored to a 1-based source line.
    Text {
        /// 1-based line in the deck text.
        line: usize,
        /// What was wrong on that line.
        message: String,
    },
    /// An option combination that cannot run (no source line available:
    /// the deck was built programmatically).
    Config {
        /// What is inconsistent.
        message: String,
    },
}

impl fmt::Display for DeckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeckError::Shape { deck, message } => write!(f, "deck `{deck}`: {message}"),
            DeckError::Invalid { deck, source } => write!(f, "deck `{deck}`: {source}"),
            DeckError::Text { line, message } => write!(f, "line {line}: {message}"),
            DeckError::Config { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for DeckError {}

impl From<DeckError> for BookLeafError {
    fn from(e: DeckError) -> Self {
        BookLeafError::Deck(e)
    }
}

/// Everything that can go wrong loading or applying a checkpoint file,
/// as a typed value.
///
/// Produced by the checkpoint codec in `bookleaf_core::output` and by
/// `SimulationBuilder::resume`. The failure-injection suite pins the
/// contract that a damaged file — truncated, bit-flipped, stale-version,
/// wrong problem — always surfaces as one of these variants and never a
/// panic.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The underlying file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The OS error text.
        message: String,
    },
    /// The byte stream ended before the section named here.
    Truncated {
        /// Which part of the format was cut short.
        what: &'static str,
    },
    /// The leading magic bytes are not a BookLeaf-rs checkpoint.
    BadMagic,
    /// The file's format version is not one this reader understands.
    UnsupportedVersion {
        /// Version stored in the file.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The payload is internally inconsistent (failed CRC, implausible
    /// counts, trailing garbage, unparsable embedded deck…).
    Corrupt {
        /// What check failed.
        what: String,
    },
    /// The checkpoint is well-formed but does not fit the target
    /// simulation (different problem, resolution, or field shapes).
    DeckMismatch {
        /// What disagrees.
        message: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, message } => {
                write!(f, "checkpoint file {path}: {message}")
            }
            CheckpointError::Truncated { what } => {
                write!(f, "checkpoint truncated in {what}")
            }
            CheckpointError::BadMagic => {
                write!(f, "not a BookLeaf-rs checkpoint (bad magic)")
            }
            CheckpointError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "checkpoint format version {found} unsupported (this build reads \
                     version {supported})"
                )
            }
            CheckpointError::Corrupt { what } => write!(f, "checkpoint corrupt: {what}"),
            CheckpointError::DeckMismatch { message } => {
                write!(f, "checkpoint does not match the simulation: {message}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CheckpointError> for BookLeafError {
    fn from(e: CheckpointError) -> Self {
        BookLeafError::Checkpoint(e)
    }
}

/// A typed point-to-point / collective communication failure.
///
/// The typhon layer bounds every blocking operation (receives and
/// collectives carry deadlines) and checksums every payload, so a dead
/// rank, a dropped message or in-flight corruption — injected by a
/// `FaultPlan` or real — surfaces as one of these variants, never as a
/// hang or a panic. All fields are deterministic (rank ids, tags,
/// scheduled steps — no wall-clock durations), so two runs of the same
/// seeded fault schedule produce byte-identical error values and the
/// recovery log built from them is reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// This rank was killed by its fault schedule: the first
    /// communication it attempts at or after the scheduled point
    /// returns this instead of touching the wire.
    Killed {
        /// The killed rank (== the rank reporting the error).
        rank: usize,
        /// The step the kill was scheduled at.
        step: usize,
    },
    /// A receive's deadline expired with no matching message — the
    /// peer is dead, the message was dropped, or it is later than the
    /// configured timeout allows.
    RecvTimeout {
        /// Rank the message was expected from.
        from: usize,
        /// Tag of the missing message.
        tag: u64,
    },
    /// A collective's deadline expired: at least one rank never
    /// contributed (died or hung before the reduction).
    CollectiveTimeout {
        /// The rank reporting the timeout.
        rank: usize,
    },
    /// A received payload failed its checksum: corrupted in flight.
    Corrupt {
        /// Sending rank.
        from: usize,
        /// Tag of the corrupt message.
        tag: u64,
    },
    /// A received payload had the wrong shape for its exchange phase.
    Malformed {
        /// Sending rank.
        from: usize,
        /// Tag of the malformed message.
        tag: u64,
        /// Doubles the phase layout expects.
        expected: usize,
        /// Doubles actually received.
        got: usize,
    },
    /// A send could not be delivered: the destination rank is gone.
    RankUnreachable {
        /// The unreachable destination rank.
        to: usize,
    },
    /// The team's channels disconnected while this rank was receiving
    /// (every peer exited — typically after another rank failed).
    Disconnected {
        /// The rank reporting the disconnect.
        rank: usize,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Killed { rank, step } => {
                write!(f, "rank {rank} killed by fault schedule at step {step}")
            }
            CommError::RecvTimeout { from, tag } => {
                write!(f, "receive from rank {from} (tag {tag}) timed out")
            }
            CommError::CollectiveTimeout { rank } => {
                write!(f, "collective timed out on rank {rank}")
            }
            CommError::Corrupt { from, tag } => {
                write!(
                    f,
                    "payload from rank {from} (tag {tag}) failed its checksum"
                )
            }
            CommError::Malformed {
                from,
                tag,
                expected,
                got,
            } => {
                write!(
                    f,
                    "payload from rank {from} (tag {tag}) malformed: expected {expected} \
                     doubles, got {got}"
                )
            }
            CommError::RankUnreachable { to } => {
                write!(f, "rank {to} unreachable (hung up)")
            }
            CommError::Disconnected { rank } => {
                write!(f, "team disconnected while rank {rank} was receiving")
            }
        }
    }
}

impl std::error::Error for CommError {}

impl From<CommError> for BookLeafError {
    fn from(e: CommError) -> Self {
        BookLeafError::CommFault(e)
    }
}

/// Which field the health sentinel flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthField {
    /// Density.
    Rho,
    /// Specific internal energy.
    Ein,
    /// Artificial viscosity.
    Q,
    /// Nodal velocity.
    U,
    /// Element Lagrangian mass.
    Mass,
    /// Element volume.
    Volume,
}

impl HealthField {
    /// Stable small integer code, used to pack a diagnosis into the
    /// f64 the sentinel min-reduces across ranks.
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            HealthField::Rho => 0,
            HealthField::Ein => 1,
            HealthField::Q => 2,
            HealthField::U => 3,
            HealthField::Mass => 4,
            HealthField::Volume => 5,
        }
    }

    /// Inverse of [`HealthField::code`].
    #[must_use]
    pub fn from_code(code: u64) -> Option<HealthField> {
        Some(match code {
            0 => HealthField::Rho,
            1 => HealthField::Ein,
            2 => HealthField::Q,
            3 => HealthField::U,
            4 => HealthField::Mass,
            5 => HealthField::Volume,
            _ => return None,
        })
    }
}

impl fmt::Display for HealthField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HealthField::Rho => "rho",
            HealthField::Ein => "ein",
            HealthField::Q => "q",
            HealthField::U => "u",
            HealthField::Mass => "mass",
            HealthField::Volume => "volume",
        };
        write!(f, "{s}")
    }
}

/// What the health sentinel found, carried inside
/// [`BookLeafError::Unhealthy`].
///
/// Field diagnoses name the offending field and the element/node index
/// on the reporting rank; the dt and conservation diagnoses carry the
/// globally-reduced values (identical on every rank by construction).
#[derive(Debug, Clone, PartialEq)]
pub enum HealthDiagnosis {
    /// A NaN or infinity appeared in a state field.
    NonFinite {
        /// Rank that saw it (0 for serial runs).
        rank: usize,
        /// The offending field.
        field: HealthField,
        /// Element index (or node index for [`HealthField::U`]) local
        /// to `rank`.
        index: usize,
    },
    /// A quantity that must stay positive went non-positive.
    NonPositive {
        /// Rank that saw it (0 for serial runs).
        rank: usize,
        /// The offending field.
        field: HealthField,
        /// Element index local to `rank`.
        index: usize,
    },
    /// The globally-reduced time step fell below the sentinel floor.
    DtFloor {
        /// The reduced dt.
        dt: f64,
        /// The configured floor.
        floor: f64,
    },
    /// Total energy drifted beyond the configured tolerance.
    ConservationDrift {
        /// Relative drift from the run's starting energy.
        drift: f64,
        /// The configured tolerance.
        tol: f64,
    },
}

impl fmt::Display for HealthDiagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthDiagnosis::NonFinite { rank, field, index } => {
                write!(f, "non-finite {field} at index {index} on rank {rank}")
            }
            HealthDiagnosis::NonPositive { rank, field, index } => {
                write!(f, "non-positive {field} at index {index} on rank {rank}")
            }
            HealthDiagnosis::DtFloor { dt, floor } => {
                write!(f, "dt {dt:.6e} collapsed below sentinel floor {floor:.6e}")
            }
            HealthDiagnosis::ConservationDrift { drift, tol } => {
                write!(
                    f,
                    "energy drift {drift:.6e} beyond sentinel tolerance {tol:.6e}"
                )
            }
        }
    }
}

/// Every fatal condition a BookLeaf run can hit.
#[derive(Debug, Clone, PartialEq)]
pub enum BookLeafError {
    /// An element's volume went non-positive (tangled / inverted mesh).
    /// Carries the global element index and the offending volume.
    NegativeVolume { element: usize, volume: f64 },
    /// The computed time step fell below the configured minimum.
    TimestepCollapse { dt: f64, dt_min: f64, cause: String },
    /// A thermodynamic state left the valid region of its EoS
    /// (e.g. negative density or internal energy where disallowed).
    InvalidState { element: usize, what: String },
    /// Mesh construction or connectivity invariants were violated.
    MeshTopology(String),
    /// An input deck was inconsistent or out of range (typed detail).
    Deck(DeckError),
    /// A miscellaneous input/configuration problem (snapshots, CLI…).
    InvalidDeck(String),
    /// Domain decomposition failed (empty part, unbalanced beyond limits…).
    Partition(String),
    /// A checkpoint file could not be read, parsed or applied.
    Checkpoint(CheckpointError),
    /// A communication-layer failure (mismatched schedule, dead rank…).
    Comm(String),
    /// A typed communication failure: timeout, corruption, dead rank…
    /// (see [`CommError`]). The comm layer's bounded waits and payload
    /// checksums make these the *only* way comm failures surface —
    /// never hangs or panics.
    CommFault(CommError),
    /// The health sentinel found an invalid state: NaN/Inf fields,
    /// non-positive mass/volume, dt collapse, conservation drift. All
    /// ranks of a team abort together with the same diagnosis.
    Unhealthy {
        /// The step at which the sweep flagged the state (0-based; the
        /// step whose results were inspected).
        step: usize,
        /// What was wrong, with the offending field and index.
        diagnosis: HealthDiagnosis,
    },
    /// A rank thread panicked during a distributed run.
    RankPanic { rank: usize, message: String },
    /// The run's wall-clock deadline expired before completion. The
    /// abort is symmetric: the rank that notices the expiry proposes a
    /// negative dt through the per-step reduction every rank already
    /// performs, so the whole team returns this error at the same step.
    /// Also returned by supervised retries whose backoff would sleep
    /// past the deadline.
    DeadlineExceeded {
        /// The 0-based step about to execute when the deadline fired.
        step: usize,
    },
}

impl BookLeafError {
    /// The typed comm failure inside, if this is one.
    #[must_use]
    pub fn as_comm_fault(&self) -> Option<&CommError> {
        match self {
            BookLeafError::CommFault(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for BookLeafError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BookLeafError::NegativeVolume { element, volume } => {
                write!(
                    f,
                    "element {element} has non-positive volume {volume:.6e} (mesh tangled)"
                )
            }
            BookLeafError::TimestepCollapse { dt, dt_min, cause } => {
                write!(f, "time step {dt:.6e} below minimum {dt_min:.6e} ({cause})")
            }
            BookLeafError::InvalidState { element, what } => {
                write!(
                    f,
                    "invalid thermodynamic state in element {element}: {what}"
                )
            }
            BookLeafError::MeshTopology(msg) => write!(f, "mesh topology error: {msg}"),
            BookLeafError::Deck(e) => write!(f, "invalid input deck: {e}"),
            BookLeafError::InvalidDeck(msg) => write!(f, "invalid input deck: {msg}"),
            BookLeafError::Partition(msg) => write!(f, "partitioning error: {msg}"),
            BookLeafError::Checkpoint(e) => write!(f, "{e}"),
            BookLeafError::Comm(msg) => write!(f, "communication error: {msg}"),
            BookLeafError::CommFault(e) => write!(f, "communication error: {e}"),
            BookLeafError::Unhealthy { step, diagnosis } => {
                write!(f, "unhealthy state after step {step}: {diagnosis}")
            }
            BookLeafError::RankPanic { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            BookLeafError::DeadlineExceeded { step } => {
                write!(f, "wall-clock deadline exceeded before step {step}")
            }
        }
    }
}

impl std::error::Error for BookLeafError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_key_fields() {
        let e = BookLeafError::NegativeVolume {
            element: 42,
            volume: -1.0,
        };
        let s = e.to_string();
        assert!(s.contains("42"));
        assert!(s.contains("tangled"));
    }

    #[test]
    fn timestep_collapse_reports_cause() {
        let e = BookLeafError::TimestepCollapse {
            dt: 1e-12,
            dt_min: 1e-8,
            cause: "CFL in element 7".into(),
        };
        assert!(e.to_string().contains("CFL in element 7"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = BookLeafError::MeshTopology("x".into());
        let b = BookLeafError::MeshTopology("x".into());
        assert_eq!(a, b);
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(BookLeafError::Comm("late".into()));
        assert!(e.to_string().contains("late"));
    }
}
