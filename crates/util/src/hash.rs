//! Checksums shared across the workspace.
//!
//! One CRC-32 implementation serves both durable artefacts (the
//! checkpoint codec in `bookleaf_core::output`) and in-flight message
//! integrity (the typhon layer checksums every payload so injected or
//! real corruption surfaces as a typed `CommError` instead of silently
//! wrong physics).

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the same
/// checksum gzip/zip use. Guarantees detection of any single burst of
/// up to 32 bits, which covers every single-byte corruption.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (IEEE, reflected). See [`crc32_f64s`] for the
/// payload-of-doubles flavour the comm layer uses.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// CRC-32 over the little-endian byte representation of a slice of
/// doubles — the message-payload checksum of the typhon layer. Bitwise:
/// `-0.0` and `0.0` differ, NaN payloads checksum by their exact bit
/// pattern, so any in-flight bit flip is detected.
#[must_use]
pub fn crc32_f64s(values: &[f64]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for v in values {
        for b in v.to_le_bytes() {
            c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn f64_flavour_matches_byte_flavour() {
        let values = [1.0f64, -0.0, f64::NAN, 3.5e-120];
        let mut bytes = Vec::new();
        for v in &values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(crc32_f64s(&values), crc32(&bytes));
    }

    #[test]
    fn single_bit_flip_changes_the_checksum() {
        let a = [1.0f64, 2.0, 3.0];
        let mut b = a;
        b[1] = f64::from_bits(b[1].to_bits() ^ 1);
        assert_ne!(crc32_f64s(&a), crc32_f64s(&b));
    }
}
