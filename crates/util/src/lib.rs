//! # bookleaf-util
//!
//! Shared numerical utilities for the BookLeaf-rs workspace: 2-D vector
//! algebra, compensated summation, typed errors, hierarchical per-kernel
//! timers and small statistics helpers.
//!
//! Everything in this crate is dependency-light and deterministic; the
//! heavier physics crates build on top of it.

pub mod constants;
pub mod error;
pub mod hash;
pub mod stats;
pub mod sum;
pub mod timer;
pub mod vec2;

pub use error::{
    BookLeafError, CheckpointError, CommError, DeckError, HealthDiagnosis, HealthField, Result,
};
pub use hash::{crc32, crc32_f64s};
pub use sum::{kahan_sum, NeumaierSum};
pub use timer::{KernelId, TimerRegistry, TimerReport};
pub use vec2::Vec2;

/// Relative comparison of two floating point numbers.
///
/// Returns `true` when `a` and `b` are within `tol` of each other relative
/// to their magnitudes, or within `tol` absolutely for values near zero.
/// This is the comparison used throughout the test suites.
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_near_zero() {
        assert!(approx_eq(0.0, 1e-13, 1e-12));
        assert!(!approx_eq(0.0, 1e-9, 1e-12));
    }

    #[test]
    fn approx_eq_relative_large() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-10));
        assert!(!approx_eq(1e12, 1.01e12, 1e-10));
    }

    #[test]
    fn approx_eq_symmetric() {
        assert_eq!(approx_eq(3.0, 4.0, 0.5), approx_eq(4.0, 3.0, 0.5));
    }
}
