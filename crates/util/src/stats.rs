//! Small statistics helpers for the benchmark harness.
//!
//! The paper reports "the average runtime of five executions" with
//! "statistically insignificant deviation"; the harness reproduces that
//! protocol and uses these helpers to summarise repeated runs.

/// Arithmetic mean. Returns 0 for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (n-1 denominator). Returns 0 for fewer than
/// two samples.
#[must_use]
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Minimum of a slice; `None` when empty.
#[must_use]
pub fn min(values: &[f64]) -> Option<f64> {
    values.iter().copied().fold(None, |acc, v| match acc {
        None => Some(v),
        Some(a) => Some(a.min(v)),
    })
}

/// Maximum of a slice; `None` when empty.
#[must_use]
pub fn max(values: &[f64]) -> Option<f64> {
    values.iter().copied().fold(None, |acc, v| match acc {
        None => Some(v),
        Some(a) => Some(a.max(v)),
    })
}

/// Relative standard deviation (coefficient of variation), used to check
/// the paper's "statistically insignificant deviation" claim on our runs.
#[must_use]
pub fn rel_std_dev(values: &[f64]) -> f64 {
    let m = mean(values);
    if m == 0.0 {
        0.0
    } else {
        std_dev(values) / m.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn std_dev_known_value() {
        // {2, 4, 4, 4, 5, 5, 7, 9}: sample sd = sqrt(32/7)
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&v) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn std_dev_degenerate() {
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn min_max() {
        let v = [3.0, -1.0, 2.0];
        assert_eq!(min(&v), Some(-1.0));
        assert_eq!(max(&v), Some(3.0));
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
    }

    #[test]
    fn rel_std_dev_zero_mean() {
        assert_eq!(rel_std_dev(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn rel_std_dev_constant_is_zero() {
        assert_eq!(rel_std_dev(&[4.0, 4.0, 4.0]), 0.0);
    }
}
