//! Compensated floating-point summation.
//!
//! Energy-conservation checks in the integration tests need sums over
//! millions of elements that are accurate to near round-off; naive
//! accumulation loses several digits. We provide Kahan summation and the
//! slightly stronger Neumaier variant (which also handles the case where
//! the addend is larger than the running sum).

/// Kahan-compensated sum of a slice.
#[must_use]
pub fn kahan_sum(values: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut c = 0.0;
    for &v in values {
        let y = v - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum
}

/// Streaming Neumaier (improved Kahan–Babuška) accumulator.
///
/// ```
/// use bookleaf_util::NeumaierSum;
/// let mut s = NeumaierSum::new();
/// s.add(1e100);
/// s.add(1.0);
/// s.add(-1e100);
/// assert_eq!(s.value(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NeumaierSum {
    sum: f64,
    comp: f64,
}

impl NeumaierSum {
    /// A fresh accumulator holding zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one value.
    #[inline]
    pub fn add(&mut self, v: f64) {
        let t = self.sum + v;
        if self.sum.abs() >= v.abs() {
            self.comp += (self.sum - t) + v;
        } else {
            self.comp += (v - t) + self.sum;
        }
        self.sum = t;
    }

    /// Add every element of a slice.
    pub fn add_slice(&mut self, values: &[f64]) {
        for &v in values {
            self.add(v);
        }
    }

    /// The compensated total.
    #[inline]
    #[must_use]
    pub fn value(&self) -> f64 {
        self.sum + self.comp
    }

    /// Merge another accumulator into this one (for parallel reduction).
    pub fn merge(&mut self, other: &NeumaierSum) {
        self.add(other.sum);
        self.add(other.comp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kahan_exact_on_small_ints() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(kahan_sum(&v), 5050.0);
    }

    #[test]
    fn kahan_beats_naive_on_small_increments() {
        // Adding 4096 ones to 1e16: naive accumulation absorbs every
        // increment (ulp at 1e16 is 2), Kahan's compensation retains them.
        let mut v = vec![1e16];
        v.extend(std::iter::repeat_n(1.0, 4096));
        let naive: f64 = v.iter().sum();
        assert_eq!(naive, 1e16); // demonstrates the failure Kahan fixes
        let k = kahan_sum(&v);
        assert!((k - (1e16 + 4096.0)).abs() <= 8.0, "kahan={k}");
    }

    #[test]
    fn neumaier_handles_large_addend() {
        let mut s = NeumaierSum::new();
        s.add(1.0);
        s.add(1e100);
        s.add(1.0);
        s.add(-1e100);
        assert_eq!(s.value(), 2.0);
    }

    #[test]
    fn neumaier_merge_matches_sequential() {
        let v: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 1e8).collect();
        let mut whole = NeumaierSum::new();
        whole.add_slice(&v);
        let (a, b) = v.split_at(500);
        let mut left = NeumaierSum::new();
        left.add_slice(a);
        let mut right = NeumaierSum::new();
        right.add_slice(b);
        left.merge(&right);
        assert!((whole.value() - left.value()).abs() <= 1e-6);
    }

    #[test]
    fn empty_sums_are_zero() {
        assert_eq!(kahan_sum(&[]), 0.0);
        assert_eq!(NeumaierSum::new().value(), 0.0);
    }
}
