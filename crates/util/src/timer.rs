//! Per-kernel wall-clock timing.
//!
//! The paper's Table II is a per-kernel breakdown (viscosity, acceleration,
//! `getdt`, `getgeom`, `getforce`, `getpc` plus the overall run). The
//! `TimerRegistry` here collects exactly those buckets; drivers wrap each
//! kernel call in [`TimerRegistry::time`] and the bench harness renders the
//! table from a [`TimerReport`].
//!
//! The registry is thread-safe: rank threads in the Typhon runtime each
//! record into their own registry which are then merged (max across ranks,
//! matching how an MPI code experiences time).

use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// The kernels the paper reports individually, plus a catch-all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelId {
    /// Time-step calculation (global reduction).
    GetDt,
    /// Artificial viscosity (the paper's most expensive kernel).
    GetQ,
    /// Force assembly (pressure + viscosity + hourglass).
    GetForce,
    /// Acceleration: mass gather, F/m, BCs, node motion.
    GetAcc,
    /// Geometry update (volumes, Jacobians, lengths).
    GetGeom,
    /// Density update.
    GetRho,
    /// Internal energy update.
    GetEin,
    /// Pressure / sound-speed EoS evaluation.
    GetPc,
    /// The fused `getgeom→getrho→getein→getpc` element sweep (one pass
    /// over corner coordinates and masses; the unfused kernels above
    /// remain the reference implementation).
    EosFused,
    /// ALE remap phase (all four sub-steps).
    Ale,
    /// Halo exchanges and reductions.
    Comms,
    /// Anything else (setup, I/O…).
    Other,
}

impl KernelId {
    /// All kernel ids in table order.
    pub const ALL: [KernelId; 12] = [
        KernelId::GetDt,
        KernelId::GetQ,
        KernelId::GetForce,
        KernelId::GetAcc,
        KernelId::GetGeom,
        KernelId::GetRho,
        KernelId::GetEin,
        KernelId::GetPc,
        KernelId::EosFused,
        KernelId::Ale,
        KernelId::Comms,
        KernelId::Other,
    ];

    /// Human-readable label matching the paper's column headings.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            KernelId::GetDt => "getdt",
            KernelId::GetQ => "viscosity",
            KernelId::GetForce => "getforce",
            KernelId::GetAcc => "acceleration",
            KernelId::GetGeom => "getgeom",
            KernelId::GetRho => "getrho",
            KernelId::GetEin => "getein",
            KernelId::GetPc => "getpc",
            KernelId::EosFused => "eos_fused",
            KernelId::Ale => "ale",
            KernelId::Comms => "comms",
            KernelId::Other => "other",
        }
    }

    fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&k| k == self)
            .expect("kernel id in ALL")
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct Bucket {
    total: Duration,
    calls: u64,
}

/// Thread-safe accumulator of per-kernel wall time.
#[derive(Debug, Default)]
pub struct TimerRegistry {
    buckets: Mutex<[Bucket; 12]>,
}

impl TimerRegistry {
    /// New empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Time a closure under `id`, returning its result.
    pub fn time<T>(&self, id: KernelId, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(id, start.elapsed());
        out
    }

    /// Record an externally measured duration (used by the device models,
    /// which charge *modeled* rather than measured time).
    pub fn record(&self, id: KernelId, d: Duration) {
        let mut buckets = self.buckets.lock();
        let b = &mut buckets[id.index()];
        b.total += d;
        b.calls += 1;
    }

    /// Snapshot into an immutable report.
    #[must_use]
    pub fn report(&self) -> TimerReport {
        let buckets = self.buckets.lock();
        TimerReport {
            seconds: KernelId::ALL.map(|k| buckets[k.index()].total.as_secs_f64()),
            calls: KernelId::ALL.map(|k| buckets[k.index()].calls),
        }
    }

    /// Reset all buckets.
    pub fn reset(&self) {
        *self.buckets.lock() = Default::default();
    }
}

/// Immutable snapshot of a [`TimerRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimerReport {
    seconds: [f64; 12],
    calls: [u64; 12],
}

impl TimerReport {
    /// An all-zero report.
    #[must_use]
    pub fn zero() -> Self {
        TimerReport {
            seconds: [0.0; 12],
            calls: [0; 12],
        }
    }

    /// Seconds accumulated under `id`.
    #[must_use]
    pub fn seconds(&self, id: KernelId) -> f64 {
        self.seconds[id.index()]
    }

    /// Number of recorded intervals under `id`.
    #[must_use]
    pub fn calls(&self, id: KernelId) -> u64 {
        self.calls[id.index()]
    }

    /// Sum over all buckets.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Fraction of the total spent in `id` (0 when the total is 0).
    #[must_use]
    pub fn fraction(&self, id: KernelId) -> f64 {
        let t = self.total_seconds();
        if t == 0.0 {
            0.0
        } else {
            self.seconds(id) / t
        }
    }

    /// Element-wise maximum with another report: how an MPI job perceives
    /// per-kernel time (the slowest rank gates progress).
    #[must_use]
    pub fn max(&self, other: &TimerReport) -> TimerReport {
        let mut out = self.clone();
        for i in 0..out.seconds.len() {
            out.seconds[i] = out.seconds[i].max(other.seconds[i]);
            out.calls[i] = out.calls[i].max(other.calls[i]);
        }
        out
    }

    /// Element-wise sum with another report.
    #[must_use]
    pub fn add(&self, other: &TimerReport) -> TimerReport {
        let mut out = self.clone();
        for i in 0..out.seconds.len() {
            out.seconds[i] += other.seconds[i];
            out.calls[i] += other.calls[i];
        }
        out
    }

    /// Scale every bucket by `factor` (used by the device models to map
    /// host-measured work onto modeled platforms).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> TimerReport {
        let mut out = self.clone();
        for s in &mut out.seconds {
            *s *= factor;
        }
        out
    }

    /// Overwrite the seconds of a single bucket.
    pub fn set_seconds(&mut self, id: KernelId, s: f64) {
        self.seconds[id.index()] = s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn time_accumulates_and_counts() {
        let reg = TimerRegistry::new();
        let v = reg.time(KernelId::GetQ, || 21 * 2);
        assert_eq!(v, 42);
        reg.time(KernelId::GetQ, || ());
        let rep = reg.report();
        assert_eq!(rep.calls(KernelId::GetQ), 2);
        assert!(rep.seconds(KernelId::GetQ) >= 0.0);
    }

    #[test]
    fn record_explicit_durations() {
        let reg = TimerRegistry::new();
        reg.record(KernelId::GetAcc, Duration::from_millis(250));
        reg.record(KernelId::GetAcc, Duration::from_millis(750));
        let rep = reg.report();
        assert!((rep.seconds(KernelId::GetAcc) - 1.0).abs() < 1e-9);
        assert_eq!(rep.calls(KernelId::GetAcc), 2);
    }

    #[test]
    fn report_fraction_sums_to_one() {
        let reg = TimerRegistry::new();
        reg.record(KernelId::GetQ, Duration::from_millis(600));
        reg.record(KernelId::GetAcc, Duration::from_millis(400));
        let rep = reg.report();
        let f: f64 = KernelId::ALL.iter().map(|&k| rep.fraction(k)).sum();
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_takes_slowest_rank() {
        let a = {
            let r = TimerRegistry::new();
            r.record(KernelId::GetQ, Duration::from_secs(2));
            r.report()
        };
        let b = {
            let r = TimerRegistry::new();
            r.record(KernelId::GetQ, Duration::from_secs(3));
            r.report()
        };
        assert_eq!(a.max(&b).seconds(KernelId::GetQ), 3.0);
    }

    #[test]
    fn scaled_multiplies_seconds() {
        let r = TimerRegistry::new();
        r.record(KernelId::GetGeom, Duration::from_secs(1));
        let rep = r.report().scaled(2.5);
        assert!((rep.seconds(KernelId::GetGeom) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn reset_clears() {
        let reg = TimerRegistry::new();
        reg.record(KernelId::Other, Duration::from_secs(1));
        reg.reset();
        assert_eq!(reg.report(), TimerReport::zero());
    }

    #[test]
    fn registry_is_thread_safe() {
        let reg = std::sync::Arc::new(TimerRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    reg.record(KernelId::Comms, Duration::from_micros(10));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.report().calls(KernelId::Comms), 400);
    }

    #[test]
    fn labels_match_paper_columns() {
        assert_eq!(KernelId::GetQ.label(), "viscosity");
        assert_eq!(KernelId::GetAcc.label(), "acceleration");
        assert_eq!(KernelId::GetDt.label(), "getdt");
    }
}
