//! Plain 2-D vector used for node positions, velocities and forces.
//!
//! BookLeaf is a 2-D code; all geometry lives in the plane. `Vec2` is a
//! `Copy` value type with the usual component-wise arithmetic plus the two
//! products that matter for quadrilateral geometry: the dot product and the
//! scalar ("z of the") cross product.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 2-D vector of `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Construct from components.
    #[inline]
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Dot product.
    #[inline]
    #[must_use]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Scalar cross product (the z component of the 3-D cross product).
    ///
    /// Twice the signed area of the triangle (origin, self, other).
    #[inline]
    #[must_use]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm.
    #[inline]
    #[must_use]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the `sqrt` when comparing lengths).
    #[inline]
    #[must_use]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    /// Unit vector in the same direction. Returns `ZERO` for the zero vector.
    #[inline]
    #[must_use]
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n == 0.0 {
            Vec2::ZERO
        } else {
            self / n
        }
    }

    /// Vector rotated 90° counter-clockwise: the left normal of an edge.
    #[inline]
    #[must_use]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Component-wise midpoint of two points.
    #[inline]
    #[must_use]
    pub fn midpoint(self, other: Vec2) -> Vec2 {
        Vec2::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }

    /// Distance between two points.
    #[inline]
    #[must_use]
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// True when both components are finite.
    #[inline]
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, v: Vec2) -> Vec2 {
        v * self
    }
}

impl MulAssign<f64> for Vec2 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        self.x *= s;
        self.y *= s;
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, s: f64) -> Vec2 {
        Vec2::new(self.x / s, self.y / s)
    }
}

impl DivAssign<f64> for Vec2 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        self.x /= s;
        self.y /= s;
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Sum for Vec2 {
    fn sum<I: Iterator<Item = Vec2>>(iter: I) -> Vec2 {
        iter.fold(Vec2::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(-3.0, 0.5);
        assert_eq!(a + b - b, a);
        assert_eq!((a * 2.0) / 2.0, a);
        assert_eq!(-(-a), a);
    }

    #[test]
    fn dot_and_cross_orthogonality() {
        let a = Vec2::new(3.0, 4.0);
        assert_eq!(a.dot(a.perp()), 0.0);
        assert_eq!(a.cross(a), 0.0);
        // cross of perp equals norm squared
        assert_eq!(a.cross(a.perp()), a.norm2());
    }

    #[test]
    fn norm_345() {
        assert_eq!(Vec2::new(3.0, 4.0).norm(), 5.0);
        assert_eq!(Vec2::new(3.0, 4.0).norm2(), 25.0);
    }

    #[test]
    fn normalized_unit_and_zero() {
        let a = Vec2::new(0.0, -7.0).normalized();
        assert!((a.norm() - 1.0).abs() < 1e-15);
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
    }

    #[test]
    fn midpoint_and_distance() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 2.0);
        assert_eq!(a.midpoint(b), Vec2::new(1.0, 1.0));
        assert!((a.distance(b) - 8.0f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn sum_iterator() {
        let total: Vec2 = (0..4).map(|i| Vec2::new(i as f64, 1.0)).sum();
        assert_eq!(total, Vec2::new(6.0, 4.0));
    }

    #[test]
    fn scalar_mul_commutes() {
        let v = Vec2::new(1.5, -2.5);
        assert_eq!(2.0 * v, v * 2.0);
    }

    #[test]
    fn is_finite_detects_nan() {
        assert!(Vec2::new(1.0, 2.0).is_finite());
        assert!(!Vec2::new(f64::NAN, 2.0).is_finite());
        assert!(!Vec2::new(1.0, f64::INFINITY).is_finite());
    }
}
