//! # bookleaf-validate
//!
//! Analytic reference solutions for BookLeaf's four standard test
//! problems, plus error norms. The integration tests compare full runs
//! against these solutions; EXPERIMENTS.md records the results.
//!
//! * [`riemann`] — exact solution of Sod's shock tube (exact Riemann
//!   solver for the ideal-gas Euler equations);
//! * [`noh`] — exact solution of the cylindrical Noh implosion;
//! * [`sedov`] — the Sedov–Taylor point-blast similarity solution
//!   (shock trajectory and Rankine–Hugoniot front states);
//! * [`norms`] — L1/L2 error norms of mesh fields against references.

pub mod noh;
pub mod norms;
pub mod riemann;
pub mod sedov;

pub use norms::{l1_error, l2_error};
pub use riemann::{ExactRiemann, PrimState};
