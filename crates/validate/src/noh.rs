//! Exact solution of the cylindrical (2-D) Noh problem.
//!
//! Cold ideal gas (γ = 5/3), uniform density ρ₀ = 1, radially inward
//! unit velocity. An infinite-strength shock forms at the origin and
//! travels outward at speed `D = (γ−1)/2 · |u| = 1/3`:
//!
//! * **post-shock** (`r < D t`): ρ = ρ₀ ((γ+1)/(γ−1))² = 16, u = 0,
//!   p = ρ₀ (γ+1)²/(γ−1) / ... — for γ = 5/3: p = 16/3;
//! * **pre-shock** (`r > D t`): the converging flow compresses
//!   geometrically: ρ = ρ₀ (1 + t/r), u = −1, p = 0.
//!
//! (Noh 1987; the cylindrical case is the one BookLeaf's 2-D quarter-
//! plane deck realises.) The problem exposes *wall heating*: artificial
//! viscosity overheats the gas at the origin, depressing the density
//! there — the paper's §III-B names this as exactly what the deck tests.

/// The exact cylindrical Noh state at radius `r`, time `t` (γ = 5/3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NohState {
    /// Density.
    pub rho: f64,
    /// Radial velocity (negative = inward).
    pub u_r: f64,
    /// Pressure.
    pub p: f64,
}

/// Shock speed for γ = 5/3, unit inflow.
pub const SHOCK_SPEED: f64 = 1.0 / 3.0;

/// Post-shock density for the cylindrical case, γ = 5/3.
pub const RHO_POST: f64 = 16.0;

/// Post-shock pressure for the cylindrical case, γ = 5/3.
pub const P_POST: f64 = 16.0 / 3.0;

/// Evaluate the exact solution.
#[must_use]
pub fn exact(r: f64, t: f64) -> NohState {
    if t <= 0.0 {
        return NohState {
            rho: 1.0,
            u_r: -1.0,
            p: 0.0,
        };
    }
    if r < SHOCK_SPEED * t {
        NohState {
            rho: RHO_POST,
            u_r: 0.0,
            p: P_POST,
        }
    } else {
        NohState {
            rho: 1.0 + t / r.max(1e-300),
            u_r: -1.0,
            p: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_util::approx_eq;

    #[test]
    fn post_shock_plateau() {
        let s = exact(0.05, 0.6);
        assert_eq!(s.rho, 16.0);
        assert_eq!(s.u_r, 0.0);
        assert!(approx_eq(s.p, 16.0 / 3.0, 1e-14));
    }

    #[test]
    fn pre_shock_geometric_compression() {
        let s = exact(0.5, 0.6);
        assert!(approx_eq(s.rho, 1.0 + 0.6 / 0.5, 1e-14));
        assert_eq!(s.u_r, -1.0);
        assert_eq!(s.p, 0.0);
    }

    #[test]
    fn shock_at_one_third_t() {
        let t = 0.6;
        let inside = exact(SHOCK_SPEED * t - 1e-9, t);
        let outside = exact(SHOCK_SPEED * t + 1e-9, t);
        assert_eq!(inside.rho, 16.0);
        assert!(outside.rho < 16.0);
        // Just outside, the geometric compression gives rho = 1 + t/(t/3) = 4.
        assert!(approx_eq(outside.rho, 4.0, 1e-6));
    }

    #[test]
    fn initial_condition() {
        let s = exact(0.3, 0.0);
        assert_eq!(s.rho, 1.0);
        assert_eq!(s.u_r, -1.0);
    }

    #[test]
    fn rankine_hugoniot_consistency() {
        // Mass flux balance across the shock: pre-state at the front is
        // (rho=4, u=-1), shock speed D = 1/3:
        // rho1 (D - u1) = rho2 (D - u2): 4·(1/3+1) = 16·(1/3) ✓.
        let lhs = 4.0 * (SHOCK_SPEED + 1.0);
        let rhs = RHO_POST * SHOCK_SPEED;
        assert!(approx_eq(lhs, rhs, 1e-12));
        // Momentum: p2 - p1 = rho1 (D - u1)(u1 - u2):
        // 16/3 = 4·(4/3)·(0 - (-1)) = 16/3 ✓.
        let dp = 4.0 * (SHOCK_SPEED + 1.0) * 1.0;
        assert!(approx_eq(P_POST, dp, 1e-12));
    }
}
