//! Error norms of mesh fields against reference solutions.
//!
//! Volume-weighted L1 and L2 norms, the standard accuracy measures for
//! finite-volume/finite-element shock codes (absolute point errors are
//! meaningless across a discontinuity; integrated norms converge).

/// Volume-weighted L1 error: `Σ w |f − g| / Σ w`.
#[must_use]
pub fn l1_error(computed: &[f64], reference: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(computed.len(), reference.len());
    assert_eq!(computed.len(), weights.len());
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..computed.len() {
        num += weights[i] * (computed[i] - reference[i]).abs();
        den += weights[i];
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Volume-weighted L2 error: `sqrt(Σ w (f − g)² / Σ w)`.
#[must_use]
pub fn l2_error(computed: &[f64], reference: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(computed.len(), reference.len());
    assert_eq!(computed.len(), weights.len());
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..computed.len() {
        let d = computed[i] - reference[i];
        num += weights[i] * d * d;
        den += weights[i];
    }
    if den == 0.0 {
        0.0
    } else {
        (num / den).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_util::approx_eq;

    #[test]
    fn zero_error_for_identical_fields() {
        let f = [1.0, 2.0, 3.0];
        let w = [0.5, 0.25, 0.25];
        assert_eq!(l1_error(&f, &f, &w), 0.0);
        assert_eq!(l2_error(&f, &f, &w), 0.0);
    }

    #[test]
    fn uniform_offset() {
        let f = [1.0, 1.0];
        let g = [0.0, 0.0];
        let w = [1.0, 3.0];
        assert!(approx_eq(l1_error(&f, &g, &w), 1.0, 1e-15));
        assert!(approx_eq(l2_error(&f, &g, &w), 1.0, 1e-15));
    }

    #[test]
    fn weights_matter() {
        let f = [1.0, 0.0];
        let g = [0.0, 0.0];
        // All weight on the erroneous cell.
        assert!(approx_eq(l1_error(&f, &g, &[1.0, 0.0]), 1.0, 1e-15));
        // All weight on the exact cell.
        assert_eq!(l1_error(&f, &g, &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn l2_penalises_outliers_more() {
        let g = [0.0; 4];
        let spread = [0.25, 0.25, 0.25, 0.25];
        let spike = [1.0, 0.0, 0.0, 0.0];
        let w = [1.0; 4];
        // Same L1...
        assert!(approx_eq(
            l1_error(&spread, &g, &w),
            l1_error(&spike, &g, &w),
            1e-15
        ));
        // ...larger L2 for the spike.
        assert!(l2_error(&spike, &g, &w) > l2_error(&spread, &g, &w));
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn mismatched_lengths_panic() {
        let _ = l1_error(&[1.0], &[1.0, 2.0], &[1.0]);
    }
}
