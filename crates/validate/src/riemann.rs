//! Exact Riemann solver for the 1-D ideal-gas Euler equations.
//!
//! Classic Toro-style solver: Newton iteration for the star-region
//! pressure using shock (Rankine–Hugoniot) and rarefaction (isentropic)
//! relations on each side, then self-similar sampling in `ξ = x/t`.
//! Sod's shock tube is the canonical instance; the solver handles any
//! two-state problem with an ideal-gas EoS (vacuum excluded).

/// A primitive 1-D state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrimState {
    /// Density.
    pub rho: f64,
    /// Velocity.
    pub u: f64,
    /// Pressure.
    pub p: f64,
}

impl PrimState {
    /// Sound speed for ratio of specific heats `gamma`.
    #[must_use]
    pub fn sound_speed(&self, gamma: f64) -> f64 {
        (gamma * self.p / self.rho).sqrt()
    }

    /// Specific internal energy (ideal gas).
    #[must_use]
    pub fn ein(&self, gamma: f64) -> f64 {
        self.p / ((gamma - 1.0) * self.rho)
    }
}

/// The solved Riemann problem, ready for sampling.
#[derive(Debug, Clone, Copy)]
pub struct ExactRiemann {
    left: PrimState,
    right: PrimState,
    gamma: f64,
    /// Star-region pressure.
    pub p_star: f64,
    /// Star-region velocity.
    pub u_star: f64,
}

impl ExactRiemann {
    /// Solve the Riemann problem between `left` and `right`.
    ///
    /// # Panics
    /// Panics if the states would produce vacuum (not used by any deck).
    #[must_use]
    pub fn solve(left: PrimState, right: PrimState, gamma: f64) -> ExactRiemann {
        let cl = left.sound_speed(gamma);
        let cr = right.sound_speed(gamma);
        assert!(
            2.0 * (cl + cr) / (gamma - 1.0) > right.u - left.u,
            "initial states produce vacuum"
        );

        // f(p): velocity jump across both waves as a function of trial
        // star pressure (Toro §4.2).
        let f_side = |p: f64, s: &PrimState, c: f64| -> (f64, f64) {
            if p > s.p {
                // Shock.
                let a = 2.0 / ((gamma + 1.0) * s.rho);
                let b = (gamma - 1.0) / (gamma + 1.0) * s.p;
                let sq = (a / (p + b)).sqrt();
                let f = (p - s.p) * sq;
                let df = sq * (1.0 - 0.5 * (p - s.p) / (p + b));
                (f, df)
            } else {
                // Rarefaction.
                let pr = (p / s.p).powf((gamma - 1.0) / (2.0 * gamma));
                let f = 2.0 * c / (gamma - 1.0) * (pr - 1.0);
                let df = pr / (s.rho * c) * (s.p / p).powf((gamma + 1.0) / (2.0 * gamma));
                (f, df)
            }
        };

        // Newton iteration from the two-rarefaction guess.
        let mut p = {
            let z = (gamma - 1.0) / (2.0 * gamma);
            let num = cl + cr - 0.5 * (gamma - 1.0) * (right.u - left.u);
            let den = cl / left.p.powf(z) + cr / right.p.powf(z);
            (num / den).powf(1.0 / z).max(1e-12)
        };
        for _ in 0..60 {
            let (fl, dfl) = f_side(p, &left, cl);
            let (fr, dfr) = f_side(p, &right, cr);
            let g = fl + fr + (right.u - left.u);
            let dg = dfl + dfr;
            let step = g / dg;
            p = (p - step).max(1e-14);
            if step.abs() < 1e-14 * p {
                break;
            }
        }
        let (fl, _) = f_side(p, &left, cl);
        let (fr, _) = f_side(p, &right, cr);
        let u_star = 0.5 * (left.u + right.u) + 0.5 * (fr - fl);
        ExactRiemann {
            left,
            right,
            gamma,
            p_star: p,
            u_star,
        }
    }

    /// Sample the self-similar solution at `xi = x / t` (diaphragm at 0).
    ///
    /// Works in a frame where the relevant wave is always *left-moving*:
    /// the left side is used as-is, the right side is mirrored
    /// (`x → −x`, velocities negated) and un-mirrored on return.
    #[must_use]
    pub fn sample(&self, xi: f64) -> PrimState {
        let g = self.gamma;
        let left_side = xi <= self.u_star;
        let (s, sign) = if left_side {
            (self.left, 1.0)
        } else {
            (self.right, -1.0)
        };
        let c = s.sound_speed(g);
        let u_rel = sign * s.u;
        let xi_rel = sign * xi;
        let us_rel = sign * self.u_star;

        if self.p_star > s.p {
            // Shock (left-moving in the working frame).
            let ratio = self.p_star / s.p;
            let shock_speed =
                u_rel - c * ((g + 1.0) / (2.0 * g) * ratio + (g - 1.0) / (2.0 * g)).sqrt();
            if xi_rel < shock_speed {
                s
            } else {
                let k = (g - 1.0) / (g + 1.0);
                let rho = s.rho * (ratio + k) / (k * ratio + 1.0);
                PrimState {
                    rho,
                    u: self.u_star,
                    p: self.p_star,
                }
            }
        } else {
            // Rarefaction (left fan in the working frame).
            let c_star = c * (self.p_star / s.p).powf((g - 1.0) / (2.0 * g));
            let head = u_rel - c;
            let tail = us_rel - c_star;
            if xi_rel < head {
                s
            } else if xi_rel > tail {
                let rho = s.rho * (self.p_star / s.p).powf(1.0 / g);
                PrimState {
                    rho,
                    u: self.u_star,
                    p: self.p_star,
                }
            } else {
                let u_fan = 2.0 / (g + 1.0) * (c + 0.5 * (g - 1.0) * u_rel + xi_rel);
                let c_fan =
                    (2.0 / (g + 1.0) * c + (g - 1.0) / (g + 1.0) * (u_rel - xi_rel)).max(1e-14);
                let rho = s.rho * (c_fan / c).powf(2.0 / (g - 1.0));
                let p = s.p * (c_fan / c).powf(2.0 * g / (g - 1.0));
                PrimState {
                    rho,
                    u: sign * u_fan,
                    p,
                }
            }
        }
    }

    /// Convenience: the standard Sod problem (left ρ=1 p=1, right
    /// ρ=0.125 p=0.1, γ=1.4).
    #[must_use]
    pub fn sod() -> ExactRiemann {
        ExactRiemann::solve(
            PrimState {
                rho: 1.0,
                u: 0.0,
                p: 1.0,
            },
            PrimState {
                rho: 0.125,
                u: 0.0,
                p: 0.1,
            },
            1.4,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_util::approx_eq;

    #[test]
    fn sod_star_state_matches_literature() {
        // Toro: p* = 0.30313, u* = 0.92745.
        let r = ExactRiemann::sod();
        assert!(approx_eq(r.p_star, 0.30313, 2e-4), "p* = {}", r.p_star);
        assert!(approx_eq(r.u_star, 0.92745, 2e-4), "u* = {}", r.u_star);
    }

    #[test]
    fn sod_sampled_regions() {
        let r = ExactRiemann::sod();
        // Far left: undisturbed left state.
        let s = r.sample(-2.0);
        assert!(approx_eq(s.rho, 1.0, 1e-12));
        // Far right: undisturbed right state.
        let s = r.sample(2.0);
        assert!(approx_eq(s.rho, 0.125, 1e-12));
        // Contact region left side (between u* and the rarefaction tail):
        // rho = 0.42632 (literature).
        let s = r.sample(0.5);
        assert!(
            approx_eq(s.rho, 0.42632, 1e-3),
            "rho contact-left = {}",
            s.rho
        );
        // Post-shock right side: rho = 0.26557.
        let s = r.sample(1.2);
        assert!(
            approx_eq(s.rho, 0.26557, 1e-3),
            "rho post-shock = {}",
            s.rho
        );
        // Shock position at t = 0.2: x = 0.35276/0.2... shock speed
        // = 1.75216. Just right of it: undisturbed.
        let s = r.sample(1.76);
        assert!(approx_eq(s.rho, 0.125, 1e-12));
        let s = r.sample(1.74);
        assert!(approx_eq(s.rho, 0.26557, 1e-3));
    }

    #[test]
    fn symmetric_problem_has_zero_contact_velocity() {
        let a = PrimState {
            rho: 1.0,
            u: 0.0,
            p: 1.0,
        };
        let r = ExactRiemann::solve(a, a, 1.4);
        assert!(r.u_star.abs() < 1e-12);
        assert!(approx_eq(r.p_star, 1.0, 1e-10));
        // Uniform everywhere.
        let s = r.sample(0.3);
        assert!(approx_eq(s.rho, 1.0, 1e-10));
    }

    #[test]
    fn colliding_states_make_double_shock() {
        let l = PrimState {
            rho: 1.0,
            u: 2.0,
            p: 0.4,
        };
        let rr = PrimState {
            rho: 1.0,
            u: -2.0,
            p: 0.4,
        };
        let r = ExactRiemann::solve(l, rr, 1.4);
        assert!(
            r.p_star > 0.4,
            "collision must raise pressure: {}",
            r.p_star
        );
        assert!(r.u_star.abs() < 1e-10);
        // Centre density exceeds the inflow density.
        assert!(r.sample(0.0).rho > 1.0);
    }

    #[test]
    fn receding_states_make_double_rarefaction() {
        let l = PrimState {
            rho: 1.0,
            u: -0.5,
            p: 1.0,
        };
        let rr = PrimState {
            rho: 1.0,
            u: 0.5,
            p: 1.0,
        };
        let r = ExactRiemann::solve(l, rr, 1.4);
        assert!(r.p_star < 1.0);
        assert!(r.sample(0.0).rho < 1.0);
    }

    #[test]
    fn fan_is_continuous_at_head_and_tail() {
        let r = ExactRiemann::sod();
        // Left rarefaction head at u_l - c_l = -1.18322.
        let c_l = 1.4f64.sqrt();
        let eps = 1e-9;
        let a = r.sample(-c_l - eps);
        let b = r.sample(-c_l + eps);
        assert!(approx_eq(a.rho, b.rho, 1e-6));
        let sample_ein = r.sample(0.0).ein(1.4);
        assert!(sample_ein > 0.0);
    }
}
