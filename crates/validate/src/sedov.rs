//! The Sedov–Taylor point-blast similarity solution (2-D cylindrical).
//!
//! Energy `E` released at a point in a cold uniform gas drives a
//! self-similar blast wave. In two dimensions the shock radius obeys
//!
//! ```text
//! R(t) = (E t² / (α ρ₀))^(1/4)
//! ```
//!
//! where `α` is the similarity-energy constant (≈ 0.984 for γ = 1.4 in
//! cylindrical symmetry). The post-shock front states follow the strong-
//! shock Rankine–Hugoniot relations. BookLeaf calculates Sedov on a
//! Cartesian mesh specifically "to test the code's capability to model
//! non-mesh-aligned shocks" (§III-B), so the validation checks are shock
//! *position* and *front* state plus radial symmetry of the numerical
//! solution.

/// Similarity constant α for γ = 1.4, cylindrical (2-D) geometry, in
/// `R(t) = (E t² / (α ρ₀))^¼` — Kamm & Timmes' standard cylindrical
/// value (their E = 0.311357 placing the shock at r = 0.75 at t = 1
/// implies α = 0.311357 / 0.75⁴ ≈ 0.9839).
pub const ALPHA_2D_GAMMA14: f64 = 0.9839;

/// Front (immediately post-shock) state of a strong blast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SedovFront {
    /// Shock radius.
    pub radius: f64,
    /// Shock speed.
    pub speed: f64,
    /// Post-shock density.
    pub rho: f64,
    /// Post-shock radial velocity.
    pub u_r: f64,
    /// Post-shock pressure.
    pub p: f64,
}

/// Shock radius at time `t` for blast energy `e` into density `rho0`.
#[must_use]
pub fn shock_radius(t: f64, e: f64, rho0: f64, gamma: f64) -> f64 {
    let _ = gamma; // α already encodes γ; kept for call-site clarity
    (e * t * t / (ALPHA_2D_GAMMA14 * rho0)).powf(0.25)
}

/// Full front state at time `t`.
#[must_use]
pub fn front(t: f64, e: f64, rho0: f64, gamma: f64) -> SedovFront {
    let radius = shock_radius(t, e, rho0, gamma);
    // dR/dt = R / (2t) in 2-D.
    let speed = if t > 0.0 {
        0.5 * radius / t
    } else {
        f64::INFINITY
    };
    // Strong-shock jumps.
    let rho = rho0 * (gamma + 1.0) / (gamma - 1.0);
    let u_r = 2.0 / (gamma + 1.0) * speed;
    let p = 2.0 / (gamma + 1.0) * rho0 * speed * speed;
    SedovFront {
        radius,
        speed,
        rho,
        u_r,
        p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bookleaf_util::approx_eq;

    #[test]
    fn unit_radius_at_unit_time_with_alpha_energy() {
        // By construction of α: E = α ⇒ R(1) = 1.
        let r = shock_radius(1.0, ALPHA_2D_GAMMA14, 1.0, 1.4);
        assert!(approx_eq(r, 1.0, 1e-12));
    }

    #[test]
    fn radius_scales_as_sqrt_t() {
        let e = ALPHA_2D_GAMMA14;
        let r1 = shock_radius(0.25, e, 1.0, 1.4);
        let r2 = shock_radius(1.0, e, 1.0, 1.4);
        assert!(approx_eq(r2 / r1, 2.0, 1e-12)); // t² inside a 4th root
    }

    #[test]
    fn front_density_is_six_for_gamma_14() {
        let f = front(0.5, ALPHA_2D_GAMMA14, 1.0, 1.4);
        assert!(approx_eq(f.rho, 6.0, 1e-12));
    }

    #[test]
    fn front_decelerates() {
        let e = ALPHA_2D_GAMMA14;
        let f1 = front(0.2, e, 1.0, 1.4);
        let f2 = front(0.8, e, 1.0, 1.4);
        assert!(f2.speed < f1.speed);
        assert!(f2.p < f1.p);
        assert!(f2.radius > f1.radius);
    }

    #[test]
    fn energy_scaling() {
        // 16x the energy doubles the radius at fixed t.
        let r1 = shock_radius(1.0, 1.0, 1.0, 1.4);
        let r2 = shock_radius(1.0, 16.0, 1.0, 1.4);
        assert!(approx_eq(r2 / r1, 2.0, 1e-12));
    }
}
