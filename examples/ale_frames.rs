//! Lagrangian vs Eulerian frames on the same problem — BookLeaf's ALE
//! bounding cases (paper §III-A): pure Lagrangian (never remap) against
//! Eulerian (remap to the original mesh every step), validated against
//! the exact Riemann solution.
//!
//! ```text
//! cargo run --release --example ale_frames
//! ```

use bookleaf::ale::{AleMode, AleOptions};
use bookleaf::core::decks;
use bookleaf::mesh::geometry::quad_centroid;
use bookleaf::validate::norms::l1_error;
use bookleaf::validate::riemann::ExactRiemann;
use bookleaf::Simulation;

fn run(ale: Option<AleOptions>) -> (Simulation, f64) {
    let deck = decks::sod(150, 3);
    let t = deck.recommended_final_time;
    let mut sim = Simulation::builder()
        .deck(deck)
        .final_time(t)
        .ale(ale)
        .build()
        .expect("valid deck");
    sim.run().expect("sod run");
    (sim, t)
}

fn report(label: &str, sim: &Simulation, t: f64) {
    let exact = ExactRiemann::sod();
    let mesh = sim.mesh();
    let st = sim.state();
    let mut computed = Vec::new();
    let mut reference = Vec::new();
    let mut weights = Vec::new();
    for e in 0..mesh.n_elements() {
        let c = quad_centroid(&mesh.corners(e));
        computed.push(st.rho[e]);
        reference.push(exact.sample((c.x - 0.5) / t).rho);
        weights.push(st.volume[e]);
    }
    let err = l1_error(&computed, &reference, &weights);
    // How far has the mesh moved from its initial positions?
    let x0 = &sim.deck().mesh;
    let max_motion = mesh
        .nodes
        .iter()
        .zip(&x0.nodes)
        .map(|(a, b)| a.distance(*b))
        .fold(0.0f64, f64::max);
    println!("{label:<26} L1(rho) = {err:.4}   max node motion = {max_motion:.4}");
}

fn main() {
    println!("ALE bounding cases on Sod's shock tube (150x3, t = 0.2)");
    println!("{}", "=".repeat(72));
    let (lagrangian, t) = run(None);
    report("Lagrangian (never remap)", &lagrangian, t);
    let (eulerian, t) = run(Some(AleOptions {
        mode: AleMode::Eulerian,
        frequency: 1,
    }));
    report("Eulerian (remap every)", &eulerian, t);
    let (ale, t) = run(Some(AleOptions {
        mode: AleMode::Smooth { alpha: 0.3 },
        frequency: 5,
    }));
    report("ALE (smooth every 5)", &ale, t);
    println!();
    println!("Lagrangian: zero numerical diffusion from advection, mesh follows the");
    println!("flow (nodes pile into the shock). Eulerian: the mesh never moves, at");
    println!("the cost of remap diffusion. ALE sits between — the method's point.");
}
