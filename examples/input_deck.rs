//! Drive a run from a *text input deck* — the way real BookLeaf works:
//! every problem in the paper is a file, not code. Loads the committed
//! `examples/decks/sod.deck`, runs it, and shows the deck ⇄ text round
//! trip.
//!
//! ```text
//! cargo run --release --example input_deck
//! ```

use bookleaf::core::decks;
use bookleaf::{ProgressLogger, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/decks/sod.deck");
    println!("loading {path}");

    let mut sim = Simulation::builder()
        .deck_file(path)
        .observer(ProgressLogger::stdout(50))
        .build()?;

    // The parsed spec is retained: print its canonical text form — the
    // exact round trip decks::from_str/to_string guarantee.
    let input = sim.input_deck().expect("deck came from text").clone();
    println!("canonical form of the parsed deck:");
    for line in decks::to_string(&input).lines() {
        println!("  | {line}");
    }
    assert_eq!(decks::from_str(&decks::to_string(&input))?, input);

    // The text deck reproduces the programmatic constructor exactly.
    let reference = decks::sod(40, 4);
    assert_eq!(sim.deck().mesh.nodes, reference.mesh.nodes);
    assert_eq!(sim.deck().rho, reference.rho);
    println!("deck matches decks::sod(40, 4) exactly");
    println!();

    let report = sim.run()?;
    println!();
    println!(
        "{}: {} steps to t = {:.3}, energy drift {:.2e}",
        report.name,
        report.steps,
        report.time,
        report.energy_drift()
    );

    // Malformed decks fail with a line-anchored, typed error.
    let err = Simulation::builder()
        .deck_str("problem = sod\nnx = 40\nny = oops\n")
        .build()
        .unwrap_err();
    println!("malformed deck example -> {err}");
    Ok(())
}
