//! The Noh implosion at three resolutions, compared against the exact
//! solution — the wall-heating study of the paper's §III-B.
//!
//! ```text
//! cargo run --release --example noh_convergence
//! ```

use bookleaf::core::decks;
use bookleaf::mesh::geometry::quad_centroid;
use bookleaf::validate::noh;
use bookleaf::validate::norms::l1_error;
use bookleaf::Simulation;

fn run(n: usize, t: f64) -> (f64, f64, f64) {
    let mut sim = Simulation::builder()
        .deck(decks::noh(n))
        .final_time(t)
        .build()
        .expect("valid deck");
    sim.run().expect("noh run");
    let mesh = sim.mesh();
    let st = sim.state();

    // L1 density error vs the exact solution, restricted to r < 0.45
    // (the outer boundary treatment differs from the infinite problem).
    let mut computed = Vec::new();
    let mut reference = Vec::new();
    let mut weights = Vec::new();
    for e in 0..mesh.n_elements() {
        let r = quad_centroid(&mesh.corners(e)).norm();
        if r < 0.45 {
            computed.push(st.rho[e]);
            reference.push(noh::exact(r, t).rho);
            weights.push(st.volume[e]);
        }
    }
    let err = l1_error(&computed, &reference, &weights);

    // Wall-heating diagnostic: density deficit of the origin cell
    // relative to the exact plateau.
    let deficit = (noh::RHO_POST - st.rho[0]) / noh::RHO_POST;

    // Plateau mean (0.06 < r < 0.16).
    let plateau: Vec<f64> = (0..mesh.n_elements())
        .filter(|&e| {
            let r = quad_centroid(&mesh.corners(e)).norm();
            (0.06..0.16).contains(&r)
        })
        .map(|e| st.rho[e])
        .collect();
    let plateau_mean = plateau.iter().sum::<f64>() / plateau.len().max(1) as f64;

    (err, deficit, plateau_mean)
}

fn main() {
    let t = 0.6;
    println!("Noh implosion vs exact solution at t = {t}");
    println!("(exact: plateau rho = 16, shock at r = 0.2, pre-shock rho = 1 + t/r)");
    println!("{}", "=".repeat(72));
    println!(
        "{:<10} {:>12} {:>20} {:>16}",
        "mesh", "L1(rho)", "wall-heating dip", "plateau mean"
    );
    let mut prev: Option<f64> = None;
    for n in [30usize, 50, 80] {
        let (err, deficit, plateau) = run(n, t);
        let conv = prev
            .map(|p| format!(" ({:.2}x better)", p / err))
            .unwrap_or_default();
        println!(
            "{:<10} {:>12.4}{conv:<16} {:>9.1}% {:>16.2}",
            format!("{n}x{n}"),
            err,
            100.0 * deficit,
            plateau
        );
        prev = Some(err);
    }
    println!();
    println!("The wall-heating dip persists at all resolutions — the artificial-");
    println!("viscosity artefact this deck exists to expose (paper SIII-B).");
}
