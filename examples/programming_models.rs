//! One deck, three programming models — the paper's evaluation axis in
//! miniature: serial reference, flat MPI (rank threads), and hybrid
//! MPI+OpenMP (rank threads x rayon), with an equivalence check.
//!
//! ```text
//! cargo run --release --example programming_models
//! ```

use bookleaf::core::{decks, run_distributed, Driver, ExecutorKind, RunConfig};
use bookleaf::util::KernelId;

fn main() {
    let deck = decks::noh(80);
    let config = RunConfig {
        final_time: 0.15,
        ..RunConfig::default()
    };

    println!("Programming models on the Noh problem (80x80, t = 0.15)");
    println!("{}", "=".repeat(76));
    println!(
        "{:<22} {:>10} {:>11} {:>11} {:>11}",
        "model", "wall (s)", "viscosity", "accel", "comms"
    );

    // Serial reference.
    let mut serial = Driver::new(deck.clone(), config).expect("valid deck");
    let s = serial.run().expect("serial run");
    println!(
        "{:<22} {:>10.3} {:>10.3}s {:>10.3}s {:>10.3}s",
        "serial",
        s.wall_seconds,
        s.timers.seconds(KernelId::GetQ),
        s.timers.seconds(KernelId::GetAcc),
        s.timers.seconds(KernelId::Comms),
    );

    // Distributed models.
    let mut outputs = Vec::new();
    for (label, executor) in [
        ("flat MPI (4 ranks)", ExecutorKind::FlatMpi { ranks: 4 }),
        (
            "hybrid (2 x 2)",
            ExecutorKind::Hybrid {
                ranks: 2,
                threads_per_rank: 2,
            },
        ),
    ] {
        let run_config = RunConfig { executor, ..config };
        let out = run_distributed(&deck, &run_config).expect("distributed run");
        println!(
            "{:<22} {:>10.3} {:>10.3}s {:>10.3}s {:>10.3}s",
            label,
            out.wall_seconds,
            out.timers.seconds(KernelId::GetQ),
            out.timers.seconds(KernelId::GetAcc),
            out.timers.seconds(KernelId::Comms),
        );
        outputs.push((label, out));
    }

    // Every model must produce the same physics.
    println!();
    for (label, out) in &outputs {
        let max_diff = (0..deck.mesh.n_elements())
            .map(|e| (serial.state().rho[e] - out.rho[e]).abs())
            .fold(0.0f64, f64::max);
        println!("max |rho - serial| for {label}: {max_diff:.2e}");
        assert!(max_diff < 1e-9, "executors diverged!");
    }
    let (_, flat) = &outputs[0];
    println!();
    println!(
        "halo traffic (flat MPI): {} messages, {:.2} MB",
        flat.comm.messages_sent,
        flat.comm.bytes_sent() as f64 / 1e6
    );
    println!("(two exchange phases per half-step plus one global dt reduction,");
    println!(" exactly the communication structure of the reference code)");
}
