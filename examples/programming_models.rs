//! One deck, three programming models — the paper's evaluation axis in
//! miniature: serial reference, flat MPI (rank threads), and hybrid
//! MPI+OpenMP (rank threads x rayon), with an equivalence check.
//!
//! Every model runs through the *same* `Simulation::builder()` path —
//! only `.executor(..)` changes — and every run hands back the same
//! unified `RunReport`, so the table below needs no per-model code.
//!
//! ```text
//! cargo run --release --example programming_models
//! ```

use bookleaf::core::decks;
use bookleaf::util::KernelId;
use bookleaf::{ExecutorKind, RunReport, Simulation};

fn run(executor: ExecutorKind) -> (Simulation, RunReport) {
    let mut sim = Simulation::builder()
        .deck(decks::noh(80))
        .final_time(0.15)
        .executor(executor)
        .build()
        .expect("valid deck");
    let report = sim.run().expect("noh run");
    (sim, report)
}

fn print_row(label: &str, report: &RunReport) {
    println!(
        "{:<22} {:>10.3} {:>10.3}s {:>10.3}s {:>10.3}s",
        label,
        report.wall_seconds,
        report.timers.seconds(KernelId::GetQ),
        report.timers.seconds(KernelId::GetAcc),
        report.timers.seconds(KernelId::Comms),
    );
}

fn main() {
    println!("Programming models on the Noh problem (80x80, t = 0.15)");
    println!("{}", "=".repeat(76));
    println!(
        "{:<22} {:>10} {:>11} {:>11} {:>11}",
        "model", "wall (s)", "viscosity", "accel", "comms"
    );

    let (serial, serial_report) = run(ExecutorKind::Serial);
    print_row("serial", &serial_report);

    let mut outputs = Vec::new();
    for (label, executor) in [
        ("flat MPI (4 ranks)", ExecutorKind::FlatMpi { ranks: 4 }),
        (
            "hybrid (2 x 2)",
            ExecutorKind::Hybrid {
                ranks: 2,
                threads_per_rank: 2,
            },
        ),
    ] {
        let (sim, report) = run(executor);
        print_row(label, &report);
        outputs.push((label, sim, report));
    }

    // Every model must produce the same physics.
    println!();
    let ne = serial.mesh().n_elements();
    for (label, sim, _) in &outputs {
        let max_diff = (0..ne)
            .map(|e| (serial.state().rho[e] - sim.state().rho[e]).abs())
            .fold(0.0f64, f64::max);
        println!("max |rho - serial| for {label}: {max_diff:.2e}");
        assert!(max_diff < 1e-9, "executors diverged!");
    }

    // The unified report carries the comm stats for every executor
    // (zero for serial — no wire traffic).
    println!();
    let (_, _, flat) = &outputs[0];
    assert_eq!(serial_report.comm.messages_sent, 0);
    println!(
        "halo traffic (flat MPI): {} messages, {:.2} MB",
        flat.comm.messages_sent,
        flat.comm.bytes_sent() as f64 / 1e6
    );
    println!("(two exchange phases per half-step plus one global dt reduction,");
    println!(" exactly the communication structure of the reference code)");
}
