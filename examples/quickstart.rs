//! Quickstart: run Sod's shock tube through the one front door and
//! print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bookleaf::util::KernelId;
use bookleaf::{DtHistory, Shared, Simulation};

fn main() {
    // The standard Sod deck: 200 x 4 elements, gamma = 1.4 both sides.
    // Every run goes through Simulation::builder() — swap .executor(..)
    // for a distributed run, nothing else changes.
    let dts = Shared::new(DtHistory::new());
    let mut sim = Simulation::builder()
        .deck(bookleaf::core::decks::sod(200, 4))
        .final_time(0.2)
        .observer(dts.clone())
        .build()
        .expect("valid deck");
    let report = sim.run().expect("run to completion");

    println!("BookLeaf-rs quickstart: Sod's shock tube");
    println!("========================================");
    println!("steps:           {}", report.steps);
    println!("simulated time:  {:.4}", report.time);
    println!("wall time:       {:.3} s", report.wall_seconds);
    println!(
        "energy drift:    {:.2e} (compatible discretisation)",
        report.energy_drift()
    );
    println!(
        "time step:       {:.3e} (smallest taken, via the DtHistory observer)",
        dts.with(|d| d.min_dt())
    );
    println!();
    println!("per-kernel profile (the paper's Table II buckets):");
    for k in KernelId::ALL {
        let s = report.timers.seconds(k);
        if s > 0.0 {
            println!(
                "  {:<14} {:>8.4} s  ({:>4.1}%)",
                k.label(),
                s,
                100.0 * report.timers.fraction(k)
            );
        }
    }

    // A peek at the solution: density along the tube axis.
    println!();
    println!("density profile (x, rho) every 20th element of the bottom row:");
    let mesh = sim.mesh();
    let st = sim.state();
    for e in (0..200).step_by(20) {
        let c = bookleaf::mesh::geometry::quad_centroid(&mesh.corners(e));
        println!("  x = {:>5.3}   rho = {:>6.4}", c.x, st.rho[e]);
    }
    println!();
    println!("Expected: rho 1.0 left of the rarefaction, ~0.426 and ~0.266 plateaus,");
    println!("0.125 right of the shock (near x = 0.85 at t = 0.2).");
}
