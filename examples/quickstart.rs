//! Quickstart: run Sod's shock tube and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bookleaf::core::{decks, Driver, RunConfig};
use bookleaf::util::KernelId;

fn main() {
    // The standard Sod deck: 200 x 4 elements, gamma = 1.4 both sides.
    let deck = decks::sod(200, 4);
    let final_time = deck.recommended_final_time;
    let config = RunConfig {
        final_time,
        ..RunConfig::default()
    };

    let mut driver = Driver::new(deck, config).expect("valid deck");
    let summary = driver.run().expect("run to completion");

    println!("BookLeaf-rs quickstart: Sod's shock tube");
    println!("========================================");
    println!("steps:           {}", summary.steps);
    println!("simulated time:  {:.4}", summary.time);
    println!("wall time:       {:.3} s", summary.wall_seconds);
    println!(
        "energy drift:    {:.2e} (compatible discretisation)",
        summary.energy_drift()
    );
    println!();
    println!("per-kernel profile (the paper's Table II buckets):");
    for k in KernelId::ALL {
        let s = summary.timers.seconds(k);
        if s > 0.0 {
            println!(
                "  {:<14} {:>8.4} s  ({:>4.1}%)",
                k.label(),
                s,
                100.0 * summary.timers.fraction(k)
            );
        }
    }

    // A peek at the solution: density along the tube axis.
    println!();
    println!("density profile (x, rho) every 20th element of the bottom row:");
    let mesh = driver.mesh();
    let st = driver.state();
    for e in (0..200).step_by(20) {
        let c = bookleaf::mesh::geometry::quad_centroid(&mesh.corners(e));
        println!("  x = {:>5.3}   rho = {:>6.4}", c.x, st.rho[e]);
    }
    println!();
    println!("Expected: rho 1.0 left of the rarefaction, ~0.426 and ~0.266 plateaus,");
    println!("0.125 right of the shock (near x = 0.85 at t = 0.2).");
}
