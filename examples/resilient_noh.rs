//! Resilient execution end to end: a Noh run on four ranks loses a
//! rank to a (deterministically injected) death mid-run, and the
//! supervisor recovers **elastically** — rewind to the last good
//! checkpoint, reshape onto two ranks, replay, finish — then the result
//! is checked bitwise against a fault-free run of the same shape
//! sequence.
//!
//! ```text
//! cargo run --release --example resilient_noh
//! ```
//!
//! Exits non-zero if recovery fails or the recovered trajectory
//! diverges.

use std::time::Duration;

use bookleaf::core::{decks, RecoveryPolicy, ReshapePolicy};
use bookleaf::typhon::FaultPlan;
use bookleaf::{ExecutorKind, Simulation};

const STEPS: usize = 40;
const SEGMENT: usize = 10;
const KILL_AT: usize = 25;

fn main() {
    let dir = std::env::temp_dir().join(format!("bookleaf_resilient_noh_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    println!("Noh on 4 ranks, rank 2 scheduled to die at step {KILL_AT}; checkpoints every {SEGMENT} steps into {}", dir.display());

    // The fault schedule is pure data: (attempt, step, rank) -> fault.
    // Attempt 0 only, so the post-recovery replay does not re-trip it.
    let plan = FaultPlan::new(2018).kill(KILL_AT, 2);

    let mut sim = Simulation::builder()
        .deck(decks::noh(24))
        .executor(ExecutorKind::FlatMpi { ranks: 4 })
        .final_time(0.3)
        .max_steps(STEPS)
        .fault_plan(plan)
        // Injected deaths should surface in milliseconds here, not the
        // production-grade 60 s deadline.
        .comm_timeout(Duration::from_millis(500))
        .build()
        .expect("valid deck");

    let policy = RecoveryPolicy::new(&dir)
        .checkpoint_every_steps(SEGMENT)
        .keep(2)
        .max_retries(3)
        .reshape(ReshapePolicy::Halve);

    let report = sim.run_resilient(&policy).expect("supervised run");

    println!(
        "\nrecovered: {} steps, t = {:.4}, {} retr{}, {} steps replayed",
        report.steps,
        report.time,
        report.recovery.retries(),
        if report.recovery.retries() == 1 {
            "y"
        } else {
            "ies"
        },
        report.recovery.steps_replayed
    );
    for event in &report.recovery.events {
        println!(
            "  attempt {}: {} -> rewound to step {}, retried on {:?}",
            event.attempt, event.error, event.from_step, event.retry_executor
        );
    }
    assert_eq!(report.steps, STEPS, "supervised run must finish");
    assert_eq!(report.recovery.retries(), 1, "exactly one absorbed fault");

    // Reference: the same shape sequence without the fault — 4 ranks to
    // the rewind point, 2 ranks for the remaining segments, handing
    // over through the same checkpoint machinery.
    let rewind = report.recovery.events[0].from_step;
    let mut reference = Simulation::builder()
        .deck(decks::noh(24))
        .executor(ExecutorKind::FlatMpi { ranks: 4 })
        .final_time(0.3)
        .max_steps(rewind)
        .build()
        .expect("valid deck");
    reference.run().expect("reference head segment");
    let mut ckpt = reference.checkpoint().expect("checkpointable deck");
    let mut boundary = rewind;
    while boundary < STEPS {
        boundary = (boundary + SEGMENT).min(STEPS);
        let mut seg = Simulation::builder()
            .resume_from(ckpt)
            .executor(ExecutorKind::FlatMpi { ranks: 2 })
            .final_time(0.3)
            .max_steps(boundary)
            .build()
            .expect("resume");
        seg.run().expect("reference segment");
        ckpt = seg.checkpoint().expect("segment checkpoint");
    }

    let mut worst = 0usize;
    for (a, b) in ckpt.snap.rho.iter().zip(&sim.state().rho) {
        if a.to_bits() != b.to_bits() {
            worst += 1;
        }
    }
    println!(
        "\nbitwise check against the fault-free shape sequence: {} of {} elements differ",
        worst,
        ckpt.snap.rho.len()
    );
    assert_eq!(worst, 0, "recovered trajectory diverged");
    println!("OK: the recovered run is the uninterrupted run, bit for bit.");

    let _ = std::fs::remove_dir_all(&dir);
}
