//! Checkpoint/restart with elastic repartitioning: pause a serial Noh
//! run halfway, write a portable checkpoint file, then resume it across
//! 4 ranks — and show the resumed trajectory lands where the
//! uninterrupted run does.
//!
//! ```text
//! cargo run --release --example restart
//! ```

use bookleaf::{ExecutorKind, Simulation};

fn main() {
    let final_time = 0.06;
    let deck = || bookleaf::core::decks::noh(24);

    // Reference: one uninterrupted serial run.
    let mut reference = Simulation::builder()
        .deck(deck())
        .final_time(final_time)
        .build()
        .expect("valid deck");
    let ref_report = reference.run().expect("reference run");

    println!("BookLeaf-rs restart: Noh implosion, checkpointed at t/2");
    println!("=======================================================");
    println!(
        "reference:  {} steps to t = {:.4} (serial, uninterrupted)",
        ref_report.steps, ref_report.time
    );

    // Interrupted run: pause at a step boundary halfway through and
    // write the whole simulation — state, cursor and the input deck
    // that rebuilds the problem — to one file.
    let mut first = Simulation::builder()
        .deck(deck())
        .final_time(final_time)
        .max_steps(ref_report.steps / 2)
        .build()
        .expect("valid deck");
    let half_report = first.run().expect("first half");
    let path = std::env::temp_dir().join("bookleaf_noh_half.ckpt");
    first.checkpoint_to(&path).expect("write checkpoint");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "checkpoint: {} steps, t = {:.4}, {} bytes -> {}",
        half_report.steps,
        half_report.time,
        bytes,
        path.display()
    );
    drop(first);

    // Resume from the file under a *different* executor shape: the
    // serial state is repartitioned across 4 ranks automatically. The
    // embedded deck supplies everything; we only lift the step cap that
    // paused the first half.
    let mut resumed = Simulation::builder()
        .resume(&path)
        .executor(ExecutorKind::FlatMpi { ranks: 4 })
        .max_steps(usize::MAX)
        .build()
        .expect("readable checkpoint");
    let resumed_report = resumed.run().expect("second half");
    println!(
        "resumed:    {} total steps to t = {:.4} (flat MPI, 4 ranks)",
        resumed_report.steps, resumed_report.time
    );

    // The elastic resume matches the uninterrupted run.
    let max_drho = reference
        .state()
        .rho
        .iter()
        .zip(&resumed.state().rho)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let max_shift = reference
        .mesh()
        .nodes
        .iter()
        .zip(&resumed.mesh().nodes)
        .map(|(a, b)| a.distance(*b))
        .fold(0.0f64, f64::max);
    println!();
    println!("agreement with the uninterrupted run:");
    println!("  max |d rho|      = {max_drho:.3e}");
    println!("  max node shift   = {max_shift:.3e}");
    assert!(
        max_drho < 1e-12 && max_shift < 1e-12,
        "resumed run diverged from the reference"
    );
    println!("  (both within 1e-12 — the restart matrix contract)");

    std::fs::remove_file(&path).ok();
}
