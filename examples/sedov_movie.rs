//! Write a VTK time series of the Sedov blast for ParaView/VisIt —
//! demonstrates in-situ output with the resumable driver.
//!
//! ```text
//! cargo run --release --example sedov_movie
//! paraview /tmp/bookleaf_sedov_*.vtk   # or visit
//! ```

use std::fs::File;
use std::io::BufWriter;

use bookleaf::core::{decks, write_vtk, Driver, RunConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let deck = decks::sedov(40);
    let config = RunConfig {
        final_time: 0.8,
        ..RunConfig::default()
    };
    let mut driver = Driver::new(deck, config)?;

    let frames = 8;
    println!("Sedov blast: writing {frames} VTK frames to /tmp/bookleaf_sedov_*.vtk");
    for frame in 0..=frames {
        let t_target = 0.8 * frame as f64 / frames as f64;
        let cursor = driver.advance_to(t_target)?;
        let (t, steps) = (cursor.t, cursor.steps);
        let path = format!("/tmp/bookleaf_sedov_{frame:03}.vtk");
        let mut file = BufWriter::new(File::create(&path)?);
        write_vtk(
            &mut file,
            driver.mesh(),
            driver.state(),
            &format!("sedov t={t:.3}"),
        )?;
        let rho_max = driver.state().rho.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "  frame {frame:>2}: t = {t:.3} ({steps:>4} steps)  rho_max = {rho_max:.2}  -> {path}"
        );
    }
    println!("done: the shock front should expand as sqrt(t) with the peak");
    println!("density near the strong-shock jump (6 for gamma = 1.4).");
    Ok(())
}
