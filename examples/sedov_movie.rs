//! Write a VTK time series of the Sedov blast for ParaView/VisIt —
//! in-situ output via the `FrameDumper` observer: the frames fall out
//! of the run itself, no advance-and-probe loop needed (and the same
//! observer writes per-rank pieces under the distributed executors).
//!
//! ```text
//! cargo run --release --example sedov_movie
//! paraview /tmp/bookleaf_sedov/sedov_step*.vtk   # or visit
//! ```

use bookleaf::core::decks;
use bookleaf::{FrameDumper, Shared, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("bookleaf_sedov");
    // A frame every 40 steps, plus the initial and final states.
    let dumper = Shared::new(FrameDumper::new(&dir, "sedov", 40));
    let mut sim = Simulation::builder()
        .deck(decks::sedov(40))
        .final_time(0.8)
        .observer(dumper.clone())
        .build()?;

    println!(
        "Sedov blast: FrameDumper writing VTK frames to {}",
        dir.display()
    );
    let report = sim.run()?;
    if let Some(err) = dumper.with(|d| d.error().map(String::from)) {
        return Err(err.into());
    }

    dumper.with(|d| {
        for path in d.written() {
            println!("  {}", path.display());
        }
        println!(
            "{} frames over {} steps (t = {:.3})",
            d.written().len(),
            report.steps,
            report.time
        );
    });
    let rho_max = sim.state().rho.iter().cloned().fold(0.0f64, f64::max);
    println!("final rho_max = {rho_max:.2}");
    println!("done: the shock front should expand as sqrt(t) with the peak");
    println!("density near the strong-shock jump (6 for gamma = 1.4).");
    Ok(())
}
