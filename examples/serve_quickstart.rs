//! Serve quickstart: start a multi-tenant server in-process, submit a
//! deck over the wire, print the digest, then drain gracefully.
//!
//! ```text
//! cargo run --release --example serve_quickstart
//! ```
//!
//! Everything below goes through the real TCP path — the same frames,
//! admission checks and supervision a remote tenant would hit.

use std::time::Duration;

use bookleaf::serve::{client, ServeConfig, Server};

const DECK: &str = "\
problem = noh
n = 12
[control]
max_steps = 20
";

fn main() {
    // An ephemeral port keeps the example runnable anywhere; a real
    // deployment would pin `addr` and raise the worker/pool counts.
    let config = ServeConfig {
        drain_dir: std::env::temp_dir().join(format!("bookleaf_quickstart_{}", std::process::id())),
        ..ServeConfig::default()
    };
    let server = Server::start(config).expect("server start");
    let addr = server.addr();
    println!("BookLeaf-rs serve quickstart");
    println!("============================");
    println!("listening on {addr}");

    // Health first: every deployment's readiness probe.
    let health =
        client::get_health(addr, Duration::from_secs(5)).expect("health endpoint reachable");
    println!(
        "GET /health      -> {} {}",
        health.status,
        health.text().trim()
    );

    // Submit a deck as tenant "alice" and read the digest back.
    let resp = client::post_run(
        addr,
        DECK,
        &[("X-Tenant", "alice"), ("X-Deadline-Ms", "30000")],
        Duration::from_secs(30),
    )
    .expect("run request");
    assert_eq!(
        resp.status,
        200,
        "healthy deck must complete: {}",
        resp.text()
    );
    println!("POST /run        -> {} {}", resp.status, resp.text().trim());

    // The same deck again is a deck-cache hit (see `cached_deck`).
    let again = client::post_run(
        addr,
        DECK,
        &[("X-Tenant", "alice")],
        Duration::from_secs(30),
    )
    .expect("cached run request");
    println!(
        "POST /run (warm) -> {} {}",
        again.status,
        again.text().trim()
    );

    // A deck over the resource ceiling is rejected before any compute,
    // with the offending line named in the error.
    let rejected = client::post_run(
        addr,
        "problem = noh\nn = 600\n",
        &[("X-Tenant", "alice")],
        Duration::from_secs(5),
    )
    .expect("rejection still answers");
    assert_eq!(rejected.status, 400);
    println!(
        "POST /run (huge) -> {} {}",
        rejected.status,
        rejected.text().trim()
    );

    // Graceful drain: stop admitting, checkpoint anything in flight.
    let drained = server.drain(Duration::from_secs(10));
    println!("drain            -> {drained} in-flight run(s) checkpointed");
    server.shutdown();
    println!("server stopped.");
}
