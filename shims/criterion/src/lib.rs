//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use —
//! [`Criterion`], `benchmark_group`, [`BenchmarkId`], `Bencher::iter`,
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`] — as a
//! plain wall-clock harness: each benchmark runs `sample_size` samples
//! and prints min/mean per-iteration times. No statistics, plots or
//! `target/criterion` output; swapping in the real criterion is a
//! one-line manifest change and the benches compile unchanged.

use std::fmt::Display;
use std::time::Instant;

/// Re-export mirror of `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Mirror of `criterion::Criterion`: holds harness settings.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup { harness: self }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        run_one(self.sample_size, &id.to_string(), f);
    }
}

/// Mirror of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    harness: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        run_one(self.harness.sample_size, &id.to_string(), f);
    }

    /// End the group (prints nothing; exists for API compatibility).
    pub fn finish(self) {}
}

/// Mirror of `criterion::BenchmarkId`: a function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Mirror of `criterion::Bencher`: `iter` times the closure.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Time `sample_size` runs of `routine` (after one untimed warm-up).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }
}

fn run_one(sample_size: usize, id: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {id:<40} (no samples)");
        return;
    }
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    println!(
        "  {id:<40} min {:>10.3} µs   mean {:>10.3} µs   ({} samples)",
        min * 1e6,
        mean * 1e6,
        b.samples.len()
    );
}

/// Mirror of `criterion_group!` (both the `name =`/`config =`/`targets =`
/// form and the positional form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirror of `criterion_main!`: emits `fn main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
