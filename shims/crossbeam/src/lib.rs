//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the [`channel`] module is provided — an unbounded MPSC channel
//! backed by `std::sync::mpsc` (whose implementation is itself derived
//! from crossbeam's since Rust 1.67, so the semantics match).

pub mod channel {
    //! Mirror of `crossbeam::channel` (unbounded flavour only).

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Mirror of `crossbeam::channel::unbounded`.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(std::sync::Mutex::new(rx)))
    }

    /// Sending half; cloneable, one per producer.
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// Receiving half. Unlike `std::sync::mpsc::Receiver`, crossbeam's
    /// receiver is `Sync` (receive-side sharing is allowed), and code in
    /// this workspace relies on that — e.g. a Typhon rank context moved
    /// into a rayon pool via `install` must be `Sync`. The `std`
    /// receiver is wrapped in a mutex to provide the same guarantee; the
    /// lock is uncontended in practice (one logical consumer per rank).
    pub struct Receiver<T>(std::sync::Mutex<std::sync::mpsc::Receiver<T>>);

    impl<T> Receiver<T> {
        /// Blocking receive. Waits in bounded slices, releasing the
        /// internal lock between them, so a concurrent `try_recv` on
        /// another thread keeps crossbeam's non-blocking contract
        /// (worst case it waits one slice, never until a message
        /// arrives for the blocked receiver).
        pub fn recv(&self) -> Result<T, RecvError> {
            use std::sync::mpsc::RecvTimeoutError;
            loop {
                let guard = self.0.lock().expect("receiver poisoned");
                match guard.recv_timeout(std::time::Duration::from_millis(1)) {
                    Ok(v) => return Ok(v),
                    Err(RecvTimeoutError::Disconnected) => return Err(RecvError),
                    Err(RecvTimeoutError::Timeout) => {
                        drop(guard);
                        std::thread::yield_now();
                    }
                }
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.lock().expect("receiver poisoned").try_recv()
        }

        /// Blocking receive with a deadline, same slicing discipline as
        /// [`Receiver::recv`]: the internal lock is released between
        /// bounded waits so concurrent `try_recv` calls stay prompt.
        /// Returns `Err(Timeout)` once `timeout` has elapsed without a
        /// message, `Err(Disconnected)` when every sender is gone.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            loop {
                let guard = self.0.lock().expect("receiver poisoned");
                match guard.recv_timeout(std::time::Duration::from_millis(1)) {
                    Ok(v) => return Ok(v),
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(RecvTimeoutError::Disconnected)
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        drop(guard);
                        if std::time::Instant::now() >= deadline {
                            return Err(RecvTimeoutError::Timeout);
                        }
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use std::sync::Arc;
        use std::time::Duration;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = super::unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(41).unwrap());
            tx.send(1).unwrap();
            assert_eq!(rx.recv().unwrap() + rx.recv().unwrap(), 42);
        }

        #[test]
        fn recv_timeout_bounds_the_wait() {
            let (tx, rx) = super::unbounded::<u32>();
            let start = std::time::Instant::now();
            let r = rx.recv_timeout(Duration::from_millis(20));
            assert!(r.is_err(), "nothing was sent");
            let waited = start.elapsed();
            assert!(waited >= Duration::from_millis(15), "returned early");
            assert!(waited < Duration::from_secs(5), "wait was unbounded");
            tx.send(3).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(20)).unwrap(), 3);
        }

        #[test]
        fn try_recv_does_not_block_behind_a_blocked_recv() {
            let (tx, rx) = super::unbounded::<u32>();
            let rx = Arc::new(rx);
            let rx2 = Arc::clone(&rx);
            // Park a thread in a blocking recv on the empty channel.
            let blocked = std::thread::spawn(move || rx2.recv());
            std::thread::sleep(Duration::from_millis(5));
            // try_recv from another thread must come back promptly with
            // Empty, not wait for the blocked receiver's message.
            let start = std::time::Instant::now();
            let r = rx.try_recv();
            assert!(r.is_err(), "channel is empty");
            assert!(
                start.elapsed() < Duration::from_millis(250),
                "try_recv blocked behind recv for {:?}",
                start.elapsed()
            );
            tx.send(7).unwrap();
            assert_eq!(blocked.join().unwrap().unwrap(), 7);
        }
    }
}
