//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the [`channel`] module is provided — an unbounded MPSC channel
//! backed by `std::sync::mpsc` (whose implementation is itself derived
//! from crossbeam's since Rust 1.67, so the semantics match).

pub mod channel {
    //! Mirror of `crossbeam::channel` (unbounded flavour only).

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Mirror of `crossbeam::channel::unbounded`.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// Sending half; cloneable, one per producer.
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = super::unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(41).unwrap());
            tx.send(1).unwrap();
            assert_eq!(rx.recv().unwrap() + rx.recv().unwrap(), 42);
        }
    }
}
