//! Offline stand-in for the `parking_lot` crate, built on `std::sync`.
//!
//! Provides [`Mutex`], [`RwLock`] and [`Condvar`] with parking_lot's
//! calling conventions: `lock()` returns the guard directly (poisoned
//! locks are recovered rather than propagated, matching parking_lot's
//! poison-free behaviour) and `Condvar::wait_while` takes the guard by
//! `&mut`.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// Mirror of `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard for [`Mutex::lock`]. Holds the std guard in an `Option` so
/// [`Condvar::wait_while`] can temporarily take ownership of it.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

/// Mirror of `parking_lot::Condvar`.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until `condition(&mut *guard)` returns `false`.
    pub fn wait_while<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        condition: impl FnMut(&mut T) -> bool,
    ) {
        let inner = guard.0.take().expect("guard present before wait");
        let inner = self
            .0
            .wait_while(inner, condition)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Block until `condition(&mut *guard)` returns `false` or `timeout`
    /// elapses. Returns `true` if the wait **timed out** with the
    /// condition still holding (mirrors parking_lot's
    /// `wait_while_for(..).timed_out()`).
    pub fn wait_while_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        condition: impl FnMut(&mut T) -> bool,
        timeout: std::time::Duration,
    ) -> bool {
        let inner = guard.0.take().expect("guard present before wait");
        let (inner, result) = self
            .0
            .wait_timeout_while(inner, timeout, condition)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        result.timed_out()
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Mirror of `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn condvar_wait_while_for_times_out() {
        let pair = (Mutex::new(false), Condvar::new());
        let (lock, cv) = &pair;
        let mut started = lock.lock();
        let start = std::time::Instant::now();
        let timed_out =
            cv.wait_while_for(&mut started, |s| !*s, std::time::Duration::from_millis(20));
        assert!(timed_out, "nobody notified: the wait must time out");
        assert!(start.elapsed() >= std::time::Duration::from_millis(15));
        assert!(!*started, "condition untouched");
    }

    #[test]
    fn condvar_wait_while_for_wakes_before_deadline() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            std::thread::sleep(std::time::Duration::from_millis(5));
            *lock.lock() = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        let timed_out =
            cv.wait_while_for(&mut started, |s| !*s, std::time::Duration::from_secs(30));
        assert!(!timed_out);
        assert!(*started);
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_while_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            *lock.lock() = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        cv.wait_while(&mut started, |s| !*s);
        assert!(*started);
        h.join().unwrap();
    }
}
