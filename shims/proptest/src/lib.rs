//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` inner
//! attribute, numeric-range strategies (`lo..hi` on `f64`/integer
//! types), and `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Unlike the real proptest there is no shrinking and no persisted
//! failure seeds: each test draws `cases` inputs from a deterministic
//! per-test RNG (seeded from the test's name), so runs are reproducible
//! across machines and CI. `prop_assume!` skips the offending case
//! rather than redrawing.

use std::ops::Range;

/// Mirror of `proptest::prelude` — everything the tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestRng,
    };
}

/// Mirror of `proptest::test_runner::Config` (field subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Accepted for compatibility with real proptest configs; this shim
    /// never shrinks, so the value is unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 1024,
        }
    }
}

/// Deterministic xorshift64* generator, seeded from the test name so
/// every test sees its own reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name; avoid a zero state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of random values for one macro argument (`x in strategy`).
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(
            self.start < self.end,
            "empty or inverted f64 range strategy: {}..{}",
            self.start,
            self.end
        );
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty or inverted integer range strategy: {}..{}",
                    self.start,
                    self.end
                );
                let span = self.end - self.start;
                self.start + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

/// Mirror of `proptest::proptest!`: expands each property into a plain
/// `#[test]` that loops over sampled cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $( let $arg = $crate::Strategy::sample(&($strategy), &mut rng); )*
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "property {} failed on case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        message,
                        [$( format!("{} = {:?}", stringify!($arg), $arg) ),*].join(", "),
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Mirror of `prop_assert!`: fails the current case without panicking
/// through foreign frames.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Mirror of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Mirror of `prop_assume!`: in this shim an unmet assumption skips the
/// remainder of the case instead of redrawing inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respected(x in 0.25f64..1.75, n in 3usize..9) {
            prop_assert!((0.25..1.75).contains(&x), "x out of range: {x}");
            prop_assert!((3..9).contains(&n), "n out of range: {n}");
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
