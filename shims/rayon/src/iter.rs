//! Sequential "parallel" iterators: [`ParIter`] wraps a std iterator and
//! exposes the rayon combinator surface the workspace uses, including the
//! two-argument `reduce(identity, op)`.

/// A wrapped std iterator with rayon-flavoured combinators.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    pub fn zip<J: Iterator>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>> {
        ParIter(self.0.zip(other.0))
    }

    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f);
    }

    /// Rayon-style reduce: fold from `identity()` with `op`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// No-op in the sequential shim (rayon uses it to bound splitting).
    #[must_use]
    pub fn with_min_len(self, _len: usize) -> Self {
        self
    }
}

/// Mirror of `rayon::iter::IntoParallelIterator`, implemented for every
/// `IntoIterator` (ranges, vectors, ...).
pub trait IntoParallelIterator {
    type SeqIter: Iterator;
    fn into_par_iter(self) -> ParIter<Self::SeqIter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type SeqIter = T::IntoIter;
    fn into_par_iter(self) -> ParIter<Self::SeqIter> {
        ParIter(self.into_iter())
    }
}

/// Mirror of `rayon::iter::IntoParallelRefIterator` (`.par_iter()`).
pub trait IntoParallelRefIterator<'data> {
    type SeqIter: Iterator;
    fn par_iter(&'data self) -> ParIter<Self::SeqIter>;
}

impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
    type SeqIter = std::slice::Iter<'data, T>;
    fn par_iter(&'data self) -> ParIter<Self::SeqIter> {
        ParIter(self.iter())
    }
}

/// Mirror of `rayon::iter::IntoParallelRefMutIterator` (`.par_iter_mut()`).
pub trait IntoParallelRefMutIterator<'data> {
    type SeqIter: Iterator;
    fn par_iter_mut(&'data mut self) -> ParIter<Self::SeqIter>;
}

impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
    type SeqIter = std::slice::IterMut<'data, T>;
    fn par_iter_mut(&'data mut self) -> ParIter<Self::SeqIter> {
        ParIter(self.iter_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_match_rayon_semantics() {
        let mut a = [1.0f64, 2.0, 3.0];
        let mut b = [10.0f64, 20.0, 30.0];
        a.par_iter_mut()
            .zip(b.par_iter_mut())
            .enumerate()
            .for_each(|(i, (x, y))| {
                *x += i as f64;
                *y -= *x;
            });
        assert_eq!(a, [1.0, 3.0, 5.0]);
        assert_eq!(b, [9.0, 17.0, 25.0]);

        let all = a
            .par_iter_mut()
            .map(|x| *x > 0.0)
            .reduce(|| true, |p, q| p && q);
        assert!(all);

        let sq: Vec<usize> = (0..4usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(sq, vec![0, 1, 4, 9]);
    }

    #[test]
    fn pool_installs_on_calling_thread() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        assert_eq!(pool.install(|| 7), 7);
    }
}
