//! Indexed parallel iterators that genuinely split and execute across
//! the pool.
//!
//! The model is a simplified rayon: every iterator here is *indexed* —
//! it knows its exact [`len`](ParallelIterator::len) and can
//! [`split_at`](ParallelIterator::split_at) any index into two disjoint
//! halves. Consumers ([`for_each`](ParallelIterator::for_each),
//! [`reduce`](ParallelIterator::reduce), [`sum`](ParallelIterator::sum),
//! [`collect`](ParallelIterator::collect)) recursively halve the
//! iterator down to roughly `4 × pool width` leaves (never below
//! [`with_min_len`](ParallelIterator::with_min_len)), forking at each
//! level with [`crate::join`] so idle workers steal the larger pending
//! halves. Leaves run as ordinary sequential iterators.
//!
//! Determinism: the split tree depends only on the length, the minimum
//! leaf length and the pool width — never on runtime stealing — so
//! `reduce`/`sum` combine in a fixed order and repeated runs are
//! bitwise identical (the property the hybrid-executor determinism test
//! pins).

use std::mem::MaybeUninit;

use crate::pool;

/// How many leaves to aim for: enough surplus over the worker count
/// that stealing can balance uneven leaf costs, few enough that
/// per-leaf overhead stays negligible.
fn split_budget() -> usize {
    4 * pool::current_num_threads()
}

// ---------------------------------------------------------------------------
// The core trait

/// An indexed, splittable parallel iterator (rayon's
/// `IndexedParallelIterator`, collapsed into a single trait covering the
/// API subset this workspace uses).
pub trait ParallelIterator: Sized + Send {
    /// Item produced (must be sendable to the worker that processes it).
    type Item: Send;
    /// The sequential iterator a leaf runs.
    type Seq: Iterator<Item = Self::Item>;

    /// Exact number of items.
    fn len(&self) -> usize;

    /// `true` when no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Minimum leaf length splitting must respect (see
    /// [`with_min_len`](ParallelIterator::with_min_len)).
    fn min_len(&self) -> usize {
        1
    }

    /// Split into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Degenerate into the sequential iterator for leaf execution.
    fn seq(self) -> Self::Seq;

    // -- combinators --------------------------------------------------

    /// Pair up with `other` index-by-index (truncating to the shorter).
    fn zip<J: ParallelIterator>(self, other: J) -> Zip<Self, J> {
        Zip { a: self, b: other }
    }

    /// Attach the global index to every item.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Transform every item with `f`.
    fn map<B, F>(self, f: F) -> Map<Self, F>
    where
        B: Send,
        F: Fn(Self::Item) -> B + Clone + Send,
    {
        Map { base: self, f }
    }

    /// Never split below `len` items per leaf (rayon's splitting bound;
    /// use it to keep per-item work amortised over chunks).
    fn with_min_len(self, len: usize) -> MinLen<Self> {
        MinLen {
            base: self,
            min: len.max(1),
        }
    }

    // -- consumers ----------------------------------------------------

    /// Run `op` on every item, in parallel across the pool.
    fn for_each<OP>(self, op: OP)
    where
        OP: Fn(Self::Item) + Send + Sync,
    {
        pool::in_pool(|| {
            drive(
                self,
                &|part: Self| part.seq().for_each(&op),
                &|(), ()| (),
                split_budget(),
            );
        });
    }

    /// Rayon-style reduce: leaves fold from `identity()` with `op`;
    /// sibling results combine with `op` up a fixed tree.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        pool::in_pool(|| {
            drive(
                self,
                &|part: Self| part.seq().fold(identity(), &op),
                &|a, b| op(a, b),
                split_budget(),
            )
        })
    }

    /// Sum the items (leaf sums combined pairwise).
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        pool::in_pool(|| {
            drive(
                self,
                &|part: Self| part.seq().sum::<S>(),
                &|a, b| [a, b].into_iter().sum(),
                split_budget(),
            )
        })
    }

    /// Collect into a container (only `Vec` is provided, which is what
    /// the workspace uses — the exact length is known up front, so every
    /// leaf writes its slice of the output in place).
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Recursive fork-join driver: halve until the split budget or the
/// minimum leaf length is exhausted, then run `leaf`; combine sibling
/// results with `merge`. The shape of this recursion is a pure function
/// of `(len, min_len, splits)` — see the module docs on determinism.
fn drive<P, R, L, M>(part: P, leaf: &L, merge: &M, splits: usize) -> R
where
    P: ParallelIterator,
    R: Send,
    L: Fn(P) -> R + Sync,
    M: Fn(R, R) -> R + Sync,
{
    let len = part.len();
    let min = part.min_len().max(1);
    if splits <= 1 || len < 2 * min || len < 2 {
        return leaf(part);
    }
    let mid = len / 2;
    let (left, right) = part.split_at(mid);
    let (ra, rb) = crate::join(
        || drive(left, leaf, merge, splits / 2),
        || drive(right, leaf, merge, splits - splits / 2),
    );
    merge(ra, rb)
}

// ---------------------------------------------------------------------------
// collect

/// Mirror of `rayon::iter::FromParallelIterator`.
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<P>(par_iter: P) -> Self
    where
        P: ParallelIterator<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P>(par_iter: P) -> Self
    where
        P: ParallelIterator<Item = T>,
    {
        let len = par_iter.len();
        let mut out: Vec<T> = Vec::with_capacity(len);
        let written = {
            let spare = &mut out.spare_capacity_mut()[..len];
            pool::in_pool(|| fill(par_iter, spare, split_budget()))
        };
        // The iterator and the slot slice are split in lockstep, so a
        // *consistent* ParallelIterator wrote every slot. The trait is
        // safe and public, though: a third-party impl whose `seq()`
        // yields fewer items than `len()` must abort here rather than
        // expose uninitialised memory (the written prefix then leaks,
        // which is safe).
        assert_eq!(
            written, len,
            "ParallelIterator produced {written} items but reported len {len}"
        );
        // SAFETY: exactly `len` slots were initialised, checked above.
        // On panic we never get here and the written items leak inside
        // the still-empty Vec, which is safe.
        unsafe { out.set_len(len) };
        out
    }
}

/// Split the iterator and the output slice in lockstep; leaves write
/// items into their slots in order. Returns how many slots were
/// initialised, so the caller can refuse `set_len` on an iterator
/// whose `seq()` under-delivers its declared `len()`.
fn fill<P>(part: P, slots: &mut [MaybeUninit<P::Item>], splits: usize) -> usize
where
    P: ParallelIterator,
{
    let len = part.len();
    let min = part.min_len().max(1);
    if splits <= 1 || len < 2 * min || len < 2 {
        let mut written = 0;
        for (slot, item) in slots.iter_mut().zip(part.seq()) {
            slot.write(item);
            written += 1;
        }
        return written;
    }
    let mid = len / 2;
    let (pl, pr) = part.split_at(mid);
    let (sl, sr) = slots.split_at_mut(mid);
    let (wl, wr) = crate::join(
        || fill(pl, sl, splits / 2),
        || fill(pr, sr, splits - splits / 2),
    );
    wl + wr
}

// ---------------------------------------------------------------------------
// Sources

/// Parallel iterator over a `usize` range.
pub struct ParRange {
    start: usize,
    end: usize,
}

impl ParallelIterator for ParRange {
    type Item = usize;
    type Seq = std::ops::Range<usize>;

    fn len(&self) -> usize {
        self.end - self.start
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = self.start + index;
        (
            ParRange {
                start: self.start,
                end: mid,
            },
            ParRange {
                start: mid,
                end: self.end,
            },
        )
    }

    fn seq(self) -> Self::Seq {
        self.start..self.end
    }
}

/// Parallel iterator over `&[T]`.
pub struct ParSlice<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for ParSlice<'data, T> {
    type Item = &'data T;
    type Seq = std::slice::Iter<'data, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index);
        (ParSlice { slice: l }, ParSlice { slice: r })
    }

    fn seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct ParSliceMut<'data, T> {
    slice: &'data mut [T],
}

impl<'data, T: Send> ParallelIterator for ParSliceMut<'data, T> {
    type Item = &'data mut T;
    type Seq = std::slice::IterMut<'data, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index);
        (ParSliceMut { slice: l }, ParSliceMut { slice: r })
    }

    fn seq(self) -> Self::Seq {
        self.slice.iter_mut()
    }
}

// ---------------------------------------------------------------------------
// Adaptors

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn min_len(&self) -> usize {
        self.a.min_len().max(self.b.min_len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }

    fn seq(self) -> Self::Seq {
        self.a.seq().zip(self.b.seq())
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);
    type Seq = std::iter::Zip<std::ops::Range<usize>, P::Seq>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn min_len(&self) -> usize {
        self.base.min_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Enumerate {
                base: l,
                offset: self.offset,
            },
            Enumerate {
                base: r,
                offset: self.offset + index,
            },
        )
    }

    fn seq(self) -> Self::Seq {
        let start = self.offset;
        let end = start + self.base.len();
        (start..end).zip(self.base.seq())
    }
}

/// See [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, B, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    B: Send,
    F: Fn(P::Item) -> B + Clone + Send,
{
    type Item = B;
    type Seq = std::iter::Map<P::Seq, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn min_len(&self) -> usize {
        self.base.min_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Map {
                base: l,
                f: self.f.clone(),
            },
            Map { base: r, f: self.f },
        )
    }

    fn seq(self) -> Self::Seq {
        self.base.seq().map(self.f)
    }
}

/// See [`ParallelIterator::with_min_len`].
pub struct MinLen<P> {
    base: P,
    min: usize,
}

impl<P: ParallelIterator> ParallelIterator for MinLen<P> {
    type Item = P::Item;
    type Seq = P::Seq;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn min_len(&self) -> usize {
        self.min.max(self.base.min_len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            MinLen {
                base: l,
                min: self.min,
            },
            MinLen {
                base: r,
                min: self.min,
            },
        )
    }

    fn seq(self) -> Self::Seq {
        self.base.seq()
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits

/// Mirror of `rayon::iter::IntoParallelIterator` for the owned sources
/// the workspace uses (index ranges).
pub trait IntoParallelIterator {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send;
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;
    type Item = usize;

    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            end: self.end.max(self.start),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = ParVec<T>;
    type Item = T;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec { vec: self }
    }
}

/// Parallel iterator draining an owned `Vec` (splits cost a
/// reallocation of the tail half; fine for the coarse splits the driver
/// performs).
pub struct ParVec<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;
    type Seq = std::vec::IntoIter<T>;

    fn len(&self) -> usize {
        self.vec.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.vec.split_off(index);
        (self, ParVec { vec: tail })
    }

    fn seq(self) -> Self::Seq {
        self.vec.into_iter()
    }
}

/// Mirror of `rayon::iter::IntoParallelRefIterator` (`.par_iter()`).
pub trait IntoParallelRefIterator<'data> {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send + 'data;
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = ParSlice<'data, T>;
    type Item = &'data T;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = ParSlice<'data, T>;
    type Item = &'data T;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { slice: self }
    }
}

/// Mirror of `rayon::iter::IntoParallelRefMutIterator` (`.par_iter_mut()`).
pub trait IntoParallelRefMutIterator<'data> {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send + 'data;
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Iter = ParSliceMut<'data, T>;
    type Item = &'data mut T;

    fn par_iter_mut(&'data mut self) -> ParSliceMut<'data, T> {
        ParSliceMut { slice: self }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Iter = ParSliceMut<'data, T>;
    type Item = &'data mut T;

    fn par_iter_mut(&'data mut self) -> ParSliceMut<'data, T> {
        ParSliceMut { slice: self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_match_rayon_semantics() {
        let mut a = [1.0f64, 2.0, 3.0];
        let mut b = [10.0f64, 20.0, 30.0];
        a.par_iter_mut()
            .zip(b.par_iter_mut())
            .enumerate()
            .for_each(|(i, (x, y))| {
                *x += i as f64;
                *y -= *x;
            });
        assert_eq!(a, [1.0, 3.0, 5.0]);
        assert_eq!(b, [9.0, 17.0, 25.0]);

        let all = a
            .par_iter_mut()
            .map(|x| *x > 0.0)
            .reduce(|| true, |p, q| p && q);
        assert!(all);

        let sq: Vec<usize> = (0..4usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(sq, vec![0, 1, 4, 9]);
    }

    #[test]
    fn enumerate_indices_are_global_after_splits() {
        let n = 10_000usize;
        let mut out = vec![0usize; n];
        out.par_iter_mut()
            .enumerate()
            .for_each(|(i, slot)| *slot = i);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn collect_preserves_order_over_large_ranges() {
        let n = 50_000usize;
        let v: Vec<usize> = (0..n).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(v.len(), n);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i + 1);
        }
    }

    #[test]
    fn with_min_len_bounds_leaf_size() {
        // Behavioural check: results are unchanged; the bound survives
        // the adaptors it is wrapped by.
        let it = (0..1000usize).into_par_iter().with_min_len(128);
        assert_eq!(it.min_len(), 128);
        let it = (0..1000usize).into_par_iter().with_min_len(64).enumerate();
        assert_eq!(it.min_len(), 64);
        let s: usize = (0..1000usize)
            .into_par_iter()
            .with_min_len(300)
            .map(|i| i)
            .sum();
        assert_eq!(s, 499_500);
    }

    #[test]
    fn zip_truncates_to_shorter_side() {
        let a = [1, 2, 3, 4, 5];
        let b = [10, 20, 30];
        let pairs: Vec<(i32, i32)> = a
            .par_iter()
            .zip(b.par_iter())
            .map(|(x, y)| (*x, *y))
            .collect();
        assert_eq!(pairs, vec![(1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn par_iter_over_shared_slices_reads() {
        let data: Vec<f64> = (0..10_000).map(f64::from).collect();
        let total: f64 = data.par_iter().map(|x| *x).sum();
        assert_eq!(total, (9_999.0 * 10_000.0) / 2.0);
    }

    #[test]
    fn vec_into_par_iter_consumes() {
        let v: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 100);
        assert_eq!(lens[0], 1);
        assert_eq!(lens[99], 2);
    }

    #[test]
    fn sum_runs_on_global_pool_outside_install() {
        // No install in sight: the chain must hop onto the global pool
        // and still produce the exact integer result.
        let s: u64 = (0..1_000_000usize).into_par_iter().map(|i| i as u64).sum();
        assert_eq!(s, 499_999_500_000);
    }
}
