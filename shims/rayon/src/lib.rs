//! Offline stand-in for the `rayon` crate — now a **real fork-join
//! work-stealing thread pool**, not a sequential mirror.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the exact API subset the workspace uses — `par_iter()`,
//! `par_iter_mut()`, `into_par_iter()`, the chain combinators
//! (`zip`/`enumerate`/`map`/`with_min_len`) and consumers
//! (`for_each`/`reduce`/`sum`/`collect`), plus [`join`],
//! [`ThreadPoolBuilder`]/[`ThreadPool`] and [`current_num_threads`] —
//! implemented over `std` threads and sync primitives only. Call sites
//! compile unchanged; swapping in the real rayon remains a one-line
//! change in the workspace manifest.
//!
//! How it executes (see [`pool`] and [`iter`] for details):
//!
//! * each [`ThreadPool`] owns persistent worker threads with per-worker
//!   deques plus a shared injector; idle workers steal oldest-first;
//! * [`ThreadPool::install`] moves the closure onto a worker, making
//!   that pool the thread-local *current pool* for every nested
//!   `par_iter`/`join` (and for [`current_num_threads`]);
//! * indexed parallel iterators recursively split index ranges/slices
//!   and fork with [`join`], so the hybrid executor's kernels genuinely
//!   run across `threads_per_rank` workers inside each rank;
//! * `par_iter` chains outside any `install` run on a lazily spawned
//!   global pool sized to the host, exactly like real rayon;
//! * panics in workers are captured and re-raised on the calling
//!   thread.
//!
//! The split tree is a pure function of length and pool width — never
//! of runtime stealing — so reductions combine in a fixed order and
//! repeated runs are bitwise reproducible.

pub mod iter;
pub mod pool;

pub use pool::{current_num_threads, join};

pub mod prelude {
    //! Mirror of `rayon::prelude`.
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator,
    };
}

use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Error returned by [`ThreadPoolBuilder::build`]. Produced when worker
/// threads cannot be spawned.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build failed")
    }
}

impl Error for ThreadPoolBuildError {}

/// Mirror of `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker count; `0` (the default) means one per available core.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Spawn the pool's persistent worker threads.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.num_threads
        };
        let (registry, handles) = pool::spawn_registry(n).map_err(|_| ThreadPoolBuildError(()))?;
        Ok(ThreadPool { registry, handles })
    }
}

/// Mirror of `rayon::ThreadPool`: persistent workers; `install` runs a
/// closure *inside* the pool and blocks until it finishes.
pub struct ThreadPool {
    registry: Arc<pool::Registry>,
    handles: Vec<JoinHandle<()>>,
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.registry.num_threads())
            .finish()
    }
}

impl ThreadPool {
    /// The width the pool was built with.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }

    /// Execute `op` on a worker of this pool, establishing the pool as
    /// the current one for every `par_iter`/`join`/
    /// [`current_num_threads`] reached from inside it. Blocks until the
    /// closure returns; panics inside it propagate to the caller. When
    /// called from one of this pool's own workers the closure runs in
    /// place (nested `install`).
    pub fn install<R, OP>(&self, op: OP) -> R
    where
        R: Send,
        OP: FnOnce() -> R + Send,
    {
        self.registry.install(op)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate_and_wake();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}
