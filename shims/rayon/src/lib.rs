//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the exact API subset the workspace uses — `par_iter()`,
//! `par_iter_mut()`, `into_par_iter()`, the chain combinators
//! (`zip`/`enumerate`/`map`/`for_each`/`reduce`/`collect`) and
//! [`ThreadPoolBuilder`] — with a **sequential** implementation on std
//! iterators. Call sites compile unchanged; swapping in the real rayon
//! is a one-line change in the workspace manifest.
//!
//! Consequence for the hybrid executor: `Threading::Rayon` currently
//! executes each rank's kernels on the rank thread itself (correctness
//! is identical, thread-level speedup is deferred until real rayon is
//! vendored). The flat-MPI executor's rank threads are real threads and
//! are unaffected.

pub mod iter;

pub mod prelude {
    //! Mirror of `rayon::prelude`.
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
    };
}

use std::error::Error;
use std::fmt;

/// Error returned by [`ThreadPoolBuilder::build`]. Never produced by the
/// shim; it exists so `?`/`map_err` call sites typecheck.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build failed")
    }
}

impl Error for ThreadPoolBuildError {}

/// Mirror of `rayon::ThreadPoolBuilder`; records the requested width but
/// builds a pool that runs closures on the calling thread.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.max(1),
        })
    }
}

/// Mirror of `rayon::ThreadPool`: `install` runs the closure immediately
/// on the current thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The width the pool was configured with.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }
}

/// The number of threads the default pool would use (always 1 here).
#[must_use]
pub fn current_num_threads() -> usize {
    1
}
