//! The fork-join work-stealing thread pool behind the shim.
//!
//! Architecture (a deliberately simple rendition of rayon's registry,
//! built on `std` primitives only):
//!
//! * A `Registry` owns one FIFO **injector** queue for work arriving
//!   from outside the pool and one deque **per worker**. Workers push and
//!   pop their own deque LIFO (newest first, for cache locality); thieves
//!   and the injector drain FIFO (oldest first — the biggest pieces of a
//!   recursively split range).
//! * [`join`] is the only fork primitive: it publishes the second closure
//!   as a `StackJob` on the worker's own deque, runs the first closure
//!   inline, then either pops the second back (not stolen — run it
//!   inline) or **helps** by stealing other work until the thief's latch
//!   fires. Blocking never idles a worker while work exists.
//! * `install` on a non-worker thread injects the closure as a job with a
//!   blocking `LockLatch` and parks until a worker completes it; on a
//!   worker of the same pool it simply runs the closure in place (nested
//!   `install`).
//! * Panics inside jobs are caught at the job boundary, carried through
//!   the latch as a payload, and re-raised on the thread that joins on
//!   the result — a panic in any worker propagates to the caller, never
//!   aborts the pool. Pool-internal mutexes recover from poisoning
//!   (`lock_recover`) rather than propagating it, so even a panic that
//!   somehow unwinds across pool internals leaves the pool usable: the
//!   process-wide contract is *poison-and-recover* — one panicked
//!   parallel sweep must never wedge later runs on the same pool.
//!
//! Everything here is `unsafe`-light: the only raw-pointer trick is the
//! classic stack-job one (a `JobRef` type-erases a pointer to a
//! `StackJob` living on the forking thread's stack; the fork never
//! returns before the job completed, so the pointer outlives every use).

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// Lock a pool-internal mutex, recovering the guard from a poisoned
/// lock instead of propagating. Every value guarded here (job deques,
/// latch flags, the sleep event counter) is valid at each intermediate
/// point of its critical sections — there is no in-flight invariant a
/// mid-section unwind could break — so recovery is always sound. This
/// is what keeps the pool usable for later `Simulation` runs after a
/// kernel sweep panicked: the panic propagates to the caller (poison),
/// and the next run simply locks on through (recover), rather than
/// hitting a `PoisonError` panic cascade on every subsequent job.
fn lock_recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] with the same poison-recovery policy as
/// [`lock_recover`].
fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Latches

/// Latch used by `join`: the waiter helps (steals work) between probes
/// and, when the pool is fully drained, parks on the registry's sleep
/// condvar — `set` tickles that condvar, so waiting burns no CPU while
/// the thief computes (see [`Registry::wait_on_latch`]).
pub(crate) struct SpinLatch {
    set: AtomicBool,
    /// The registry whose sleep machinery to tickle on `set`. Raw
    /// pointer: the registry strictly outlives the join frame the latch
    /// lives in (the frame runs on one of the registry's own workers).
    registry: *const Registry,
}

impl SpinLatch {
    fn new(registry: &Registry) -> Self {
        SpinLatch {
            set: AtomicBool::new(false),
            registry: std::ptr::from_ref(registry),
        }
    }

    fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    /// `SeqCst` probe for the pre-sleep handshake (pairs with the
    /// `SeqCst` store + sleeper check in [`SpinLatch::set`] so either
    /// the setter sees the sleeper or the sleeper sees the latch).
    fn probe_strong(&self) -> bool {
        self.set.load(Ordering::SeqCst)
    }
}

/// Blocking latch used by `install` from non-worker threads (they have
/// no queue to help from, so they park on a condvar).
pub(crate) struct LockLatch {
    done: Mutex<bool>,
    cv: Condvar,
}

impl LockLatch {
    fn new() -> Self {
        LockLatch {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut done = lock_recover(&self.done);
        while !*done {
            done = wait_recover(&self.cv, done);
        }
    }
}

/// What a job does once finished: flip its latch. The store must be the
/// job's final touch of the `StackJob` memory — the owner may pop its
/// stack frame immediately after observing the latch.
pub(crate) trait Latch {
    fn set(&self);
}

impl Latch for SpinLatch {
    fn set(&self) {
        // Copy the registry pointer out *before* flipping the flag: the
        // instant the store is visible, the waiter may return from
        // `join` and pop the stack frame holding this latch, so the
        // store must be our last touch of `self`.
        let registry = self.registry;
        self.set.store(true, Ordering::SeqCst);
        // SAFETY: the registry outlives every join frame on its own
        // workers (the frame runs on one of the registry's worker
        // threads, which hold the `Arc`).
        unsafe { (*registry).sleep.notify() };
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        let mut done = lock_recover(&self.done);
        *done = true;
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Jobs

/// Type-erased pointer to a job awaiting execution. The pointee is a
/// `StackJob` on the stack of the thread that forked it; that thread
/// does not return until the job's latch fires, so the pointer is valid
/// for as long as any queue or thief holds this ref.
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only ever executed once, and the closure it points
// to is `Send` (enforced by `StackJob::new`'s bounds).
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    /// Must be called at most once per underlying job, while the
    /// `StackJob` it points to is still alive.
    unsafe fn execute(self) {
        (self.execute_fn)(self.data);
    }
}

enum JobResult<R> {
    NotRun,
    Ok(R),
    Panicked(Box<dyn Any + Send>),
}

/// A closure pinned on the forking thread's stack, executable exactly
/// once from any thread via its `JobRef`.
pub(crate) struct StackJob<L: Latch, F, R> {
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
    latch: L,
}

impl<L, F, R> StackJob<L, F, R>
where
    L: Latch,
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(latch: L, f: F) -> Self {
        StackJob {
            f: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(JobResult::NotRun),
            latch,
        }
    }

    fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: std::ptr::from_ref(self).cast(),
            execute_fn: Self::execute_erased,
        }
    }

    /// # Safety
    /// `ptr` must come from `as_job_ref` of a live `StackJob`, and be
    /// executed at most once.
    unsafe fn execute_erased(ptr: *const ()) {
        let job = &*ptr.cast::<Self>();
        let f = (*job.f.get()).take().expect("job executed twice");
        let out = match panic::catch_unwind(AssertUnwindSafe(f)) {
            Ok(v) => JobResult::Ok(v),
            Err(payload) => JobResult::Panicked(payload),
        };
        *job.result.get() = out;
        job.latch.set();
    }

    /// Run the closure on the owning thread (the job was popped back
    /// before any thief saw it). Panics propagate directly.
    fn run_inline(self) -> R {
        let f = self.f.into_inner().expect("job executed twice");
        f()
    }

    /// Consume the completed job, re-raising a captured panic.
    fn into_result(self) -> R {
        match self.result.into_inner() {
            JobResult::Ok(v) => v,
            JobResult::Panicked(payload) => panic::resume_unwind(payload),
            JobResult::NotRun => unreachable!("latch set but job never ran"),
        }
    }
}

// ---------------------------------------------------------------------------
// Sleep machinery

/// Wakeup channel for idle workers, tuned so the hot path (pushing a job
/// while every worker is busy) is a single relaxed-ish atomic load.
struct Sleep {
    /// Event counter; bumping it (under the lock) is what "wake up"
    /// means. Prevents lost wakeups between a worker's last scan and its
    /// `wait`.
    events: Mutex<u64>,
    cv: Condvar,
    /// Number of workers past their pre-sleep declaration. Pushers skip
    /// the mutex entirely while this is zero.
    sleepers: AtomicUsize,
}

impl Sleep {
    fn new() -> Self {
        Sleep {
            events: Mutex::new(0),
            cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
        }
    }

    fn notify(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let mut events = lock_recover(&self.events);
            *events += 1;
            self.cv.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Registry

/// Shared state of one thread pool: queues + sleep + termination flag.
pub(crate) struct Registry {
    injector: Mutex<VecDeque<JobRef>>,
    queues: Vec<Mutex<VecDeque<JobRef>>>,
    sleep: Sleep,
    terminate: AtomicBool,
}

// The TLS identity of a worker thread: which registry it belongs to and
// its index there. The raw pointer is valid for the worker's lifetime
// because the worker itself keeps an `Arc<Registry>` alive.
thread_local! {
    static CURRENT_WORKER: Cell<Option<(*const Registry, usize)>> = const { Cell::new(None) };
}

#[derive(Clone, Copy)]
struct WorkerCtx {
    registry: *const Registry,
    index: usize,
}

fn current_worker() -> Option<WorkerCtx> {
    CURRENT_WORKER
        .with(|c| c.get())
        .map(|(registry, index)| WorkerCtx { registry, index })
}

/// Spawn a registry with `n` workers. Handles are returned so owned
/// pools can join them on drop; the global pool leaks them. On spawn
/// failure (thread/resource exhaustion) the workers already started are
/// shut down and the error is propagated, so
/// `ThreadPoolBuilder::build`'s `Result` is honest.
pub(crate) fn spawn_registry(n: usize) -> std::io::Result<(Arc<Registry>, Vec<JoinHandle<()>>)> {
    let registry = Arc::new(Registry {
        injector: Mutex::new(VecDeque::new()),
        queues: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
        sleep: Sleep::new(),
        terminate: AtomicBool::new(false),
    });
    let mut handles = Vec::with_capacity(n);
    for index in 0..n {
        let worker_registry = Arc::clone(&registry);
        let spawned = std::thread::Builder::new()
            .name(format!("rayon-shim-{index}"))
            .spawn(move || worker_loop(&worker_registry, index));
        match spawned {
            Ok(handle) => handles.push(handle),
            Err(err) => {
                registry.terminate_and_wake();
                for handle in handles {
                    let _ = handle.join();
                }
                return Err(err);
            }
        }
    }
    Ok((registry, handles))
}

fn worker_loop(registry: &Arc<Registry>, index: usize) {
    CURRENT_WORKER.with(|c| c.set(Some((Arc::as_ptr(registry), index))));
    loop {
        // Hot path: drain work with no sleep bookkeeping at all.
        if let Some(job) = registry.find_work(index) {
            // SAFETY: each JobRef is executed exactly once (queues hand
            // them out once), and its StackJob is alive until its latch.
            unsafe { job.execute() };
            continue;
        }
        if registry.terminate.load(Ordering::SeqCst) {
            break;
        }
        // Idle: declare intent to sleep *before* a final scan, so a
        // pusher that misses that scan is guaranteed to see
        // `sleepers > 0` and bump the event counter we captured first.
        let seen = *lock_recover(&registry.sleep.events);
        registry.sleep.sleepers.fetch_add(1, Ordering::SeqCst);
        if let Some(job) = registry.find_work(index) {
            registry.sleep.sleepers.fetch_sub(1, Ordering::SeqCst);
            // SAFETY: as above.
            unsafe { job.execute() };
            continue;
        }
        if registry.terminate.load(Ordering::SeqCst) {
            registry.sleep.sleepers.fetch_sub(1, Ordering::SeqCst);
            break;
        }
        let mut events = lock_recover(&registry.sleep.events);
        while *events == seen && !registry.terminate.load(Ordering::SeqCst) {
            events = wait_recover(&registry.sleep.cv, events);
        }
        drop(events);
        registry.sleep.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Registry {
    pub(crate) fn num_threads(&self) -> usize {
        self.queues.len()
    }

    fn push_local(&self, index: usize, job: JobRef) {
        lock_recover(&self.queues[index]).push_back(job);
        self.sleep.notify();
    }

    fn inject(&self, job: JobRef) {
        lock_recover(&self.injector).push_back(job);
        self.sleep.notify();
    }

    /// Pop `job` back off our own deque if no thief took it. LIFO
    /// discipline means the back of the deque is exactly the job this
    /// stack frame pushed (inner joins have already popped theirs).
    fn pop_local_if(&self, index: usize, job: JobRef) -> bool {
        let mut q = lock_recover(&self.queues[index]);
        if q.back().is_some_and(|j| std::ptr::eq(j.data, job.data)) {
            q.pop_back();
            true
        } else {
            false
        }
    }

    /// Newest local work, else injected work, else steal oldest-first
    /// from the other workers.
    fn find_work(&self, index: usize) -> Option<JobRef> {
        if let Some(job) = lock_recover(&self.queues[index]).pop_back() {
            return Some(job);
        }
        if let Some(job) = lock_recover(&self.injector).pop_front() {
            return Some(job);
        }
        let n = self.queues.len();
        for k in 1..n {
            let victim = (index + k) % n;
            if let Some(job) = lock_recover(&self.queues[victim]).pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Wait for a stolen job's latch, helping with other work while any
    /// exists and parking on the sleep condvar when the pool is drained
    /// (the thief's [`SpinLatch::set`] tickles that condvar). A short
    /// yield-spin bridges the common case where the thief finishes
    /// within a timeslice, avoiding the lock traffic of the full
    /// pre-sleep handshake.
    fn wait_on_latch(&self, index: usize, latch: &SpinLatch) {
        let mut spins = 0u32;
        loop {
            if latch.probe() {
                return;
            }
            if let Some(job) = self.find_work(index) {
                spins = 0;
                // SAFETY: executed exactly once; see worker_loop.
                unsafe { job.execute() };
                continue;
            }
            spins += 1;
            if spins < 32 {
                std::thread::yield_now();
                continue;
            }
            // Pre-sleep handshake, as in `worker_loop`: declare the
            // sleeper first, then re-probe with SeqCst so either the
            // setter sees `sleepers > 0` (and bumps the event counter)
            // or we see the latch already set.
            let seen = *lock_recover(&self.sleep.events);
            self.sleep.sleepers.fetch_add(1, Ordering::SeqCst);
            if latch.probe_strong() {
                self.sleep.sleepers.fetch_sub(1, Ordering::SeqCst);
                return;
            }
            if let Some(job) = self.find_work(index) {
                // Retract the declaration before running the job.
                self.sleep.sleepers.fetch_sub(1, Ordering::SeqCst);
                spins = 0;
                // SAFETY: executed exactly once; see worker_loop.
                unsafe { job.execute() };
                continue;
            }
            let mut events = lock_recover(&self.sleep.events);
            while *events == seen && !latch.probe() {
                events = wait_recover(&self.sleep.cv, events);
            }
            drop(events);
            self.sleep.sleepers.fetch_sub(1, Ordering::SeqCst);
            spins = 0;
        }
    }

    /// Run `op` inside this pool: directly when already on one of its
    /// workers, otherwise injected + blocked on a `LockLatch`.
    pub(crate) fn install<R, OP>(self: &Arc<Self>, op: OP) -> R
    where
        R: Send,
        OP: FnOnce() -> R + Send,
    {
        if let Some(w) = current_worker() {
            if std::ptr::eq(w.registry, Arc::as_ptr(self)) {
                return op();
            }
        }
        let job = StackJob::new(LockLatch::new(), op);
        self.inject(job.as_job_ref());
        job.latch.wait();
        job.into_result()
    }

    pub(crate) fn terminate_and_wake(&self) {
        self.terminate.store(true, Ordering::SeqCst);
        let mut events = lock_recover(&self.sleep.events);
        *events += 1;
        self.sleep.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// The global (lazily spawned) pool

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

fn default_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The pool `par_iter` chains use outside any `install`: spawned on
/// first use with one worker per available core, never torn down
/// (workers are daemon threads, like real rayon's global pool).
pub(crate) fn global_registry() -> &'static Arc<Registry> {
    GLOBAL.get_or_init(|| {
        let (registry, _handles) =
            spawn_registry(default_num_threads()).expect("failed to spawn the global rayon pool");
        registry
    })
}

/// Run `op` on *some* pool: in place when the current thread is already
/// a pool worker, else on the global pool. Entry point for the parallel
/// iterator drivers, so that every `join` they perform lands on a
/// worker.
pub(crate) fn in_pool<R, OP>(op: OP) -> R
where
    R: Send,
    OP: FnOnce() -> R + Send,
{
    if current_worker().is_some() {
        op()
    } else {
        global_registry().install(op)
    }
}

/// Width of the pool the calling thread executes in: the installed
/// pool's width on a worker, else the width the global pool has/would
/// have. This is the `rayon::current_num_threads` fix — the sequential
/// shim hardwired 1.
#[must_use]
pub fn current_num_threads() -> usize {
    match current_worker() {
        // SAFETY: the registry outlives its workers; we *are* one.
        Some(w) => unsafe { (*w.registry).num_threads() },
        None => default_num_threads(),
    }
}

// ---------------------------------------------------------------------------
// join

/// Run both closures, potentially in parallel, returning both results.
/// Mirror of `rayon::join` (fork-join semantics, panic propagation, and
/// all): `oper_b` is made stealable while the caller runs `oper_a`.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match current_worker() {
        Some(w) => join_on_worker(w, oper_a, oper_b),
        // Not inside any pool: plain sequential execution (rayon would
        // bounce through the global pool; the drivers in `iter` already
        // do that hop once per chain, so a bare external `join` is only
        // reachable through direct API use).
        None => {
            let ra = oper_a();
            let rb = oper_b();
            (ra, rb)
        }
    }
}

fn join_on_worker<A, B, RA, RB>(w: WorkerCtx, oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    // SAFETY: `w.registry` points at the registry keeping this worker
    // thread alive.
    let registry = unsafe { &*w.registry };
    let job_b = StackJob::new(SpinLatch::new(registry), oper_b);
    let ref_b = job_b.as_job_ref();
    registry.push_local(w.index, ref_b);

    // Run A, containing its panic until B is accounted for — B may
    // borrow from this stack frame, so we must not unwind past it while
    // a thief is still running it.
    let result_a = panic::catch_unwind(AssertUnwindSafe(oper_a));

    if registry.pop_local_if(w.index, ref_b) {
        // B was never stolen.
        match result_a {
            Ok(ra) => (ra, job_b.run_inline()),
            // B never ran; dropping it un-run is fine.
            Err(payload) => panic::resume_unwind(payload),
        }
    } else {
        // B was stolen: help with other work until its latch fires,
        // parking when the pool is drained (no busy-spin — on an
        // oversubscribed host that would steal cycles from the very
        // thief we are waiting on).
        registry.wait_on_latch(w.index, &job_b.latch);
        match result_a {
            Ok(ra) => (ra, job_b.into_result()),
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iter::{IntoParallelIterator, ParallelIterator};
    use crate::ThreadPoolBuilder;
    use std::collections::HashSet;
    use std::thread::ThreadId;
    use std::time::Duration;

    fn pool(n: usize) -> crate::ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn install_establishes_pool_context() {
        let p = pool(4);
        assert_eq!(p.current_num_threads(), 4);
        // The satellite fix: current_num_threads() must report the
        // *installed* pool's width, not 1.
        assert_eq!(p.install(current_num_threads), 4);
        let q = pool(2);
        assert_eq!(q.install(current_num_threads), 2);
    }

    #[test]
    fn install_returns_closure_result() {
        let p = pool(2);
        let data = [1u64, 2, 3];
        // Non-'static borrow across install: the blocking contract
        // makes this sound, like real rayon.
        let sum = p.install(|| data.iter().sum::<u64>());
        assert_eq!(sum, 6);
    }

    #[test]
    fn nested_install_same_pool_runs_in_place() {
        let p = pool(3);
        let n = p.install(|| p.install(|| p.install(current_num_threads)));
        assert_eq!(n, 3);
    }

    #[test]
    fn nested_install_across_pools_switches_context() {
        let a = pool(2);
        let b = pool(5);
        let (na, nb, na_again) = a.install(|| {
            let na = current_num_threads();
            let nb = b.install(current_num_threads);
            (na, nb, current_num_threads())
        });
        assert_eq!(na, 2);
        assert_eq!(nb, 5);
        assert_eq!(na_again, 2);
    }

    #[test]
    fn reduce_over_large_range_matches_sequential() {
        let p = pool(4);
        let n = 100_000usize;
        let par: usize = p.install(|| {
            (0..n)
                .into_par_iter()
                .map(|i| i * i)
                .reduce(|| 0, |a, b| a + b)
        });
        let seq: usize = (0..n).map(|i| i * i).sum();
        assert_eq!(par, seq);
        let par_sum: usize = p.install(|| (0..n).into_par_iter().sum());
        assert_eq!(par_sum, n * (n - 1) / 2);
    }

    #[test]
    fn panic_in_worker_propagates_to_caller() {
        let p = pool(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.install(|| panic!("boom from a worker"));
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("boom from a worker"), "payload lost: {msg:?}");
        // The pool survives and stays usable.
        assert_eq!(p.install(|| 21 * 2), 42);
    }

    #[test]
    fn panic_inside_parallel_iter_propagates() {
        let p = pool(4);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.install(|| {
                (0..10_000usize).into_par_iter().for_each(|i| {
                    assert!(i != 7_777, "found the poison element");
                });
            });
        }));
        assert!(caught.is_err());
        assert_eq!(p.install(|| 1 + 1), 2);
    }

    #[test]
    fn zero_and_one_element_splits() {
        let p = pool(4);
        p.install(|| {
            (0..0usize)
                .into_par_iter()
                .for_each(|_| panic!("empty range produced items"));
            let empty: Vec<usize> = (0..0usize).into_par_iter().map(|i| i).collect();
            assert!(empty.is_empty());
            assert_eq!((0..0usize).into_par_iter().reduce(|| 9, |a, b| a + b), 9);
            let one: Vec<usize> = (5..6usize).into_par_iter().map(|i| i * 2).collect();
            assert_eq!(one, vec![10]);
            assert_eq!((5..6usize).into_par_iter().reduce(|| 0, |a, b| a + b), 5);
            let mut single = [3.0f64];
            use crate::iter::IntoParallelRefMutIterator;
            single.par_iter_mut().for_each(|x| *x *= 2.0);
            assert_eq!(single[0], 6.0);
        });
    }

    #[test]
    fn work_actually_distributes_across_workers() {
        let p = pool(4);
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        p.install(|| {
            (0..64usize).into_par_iter().for_each(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                // Give other workers a chance to steal even on a
                // single-core host.
                std::thread::sleep(Duration::from_millis(1));
            });
        });
        let seen = seen.into_inner().unwrap();
        assert!(
            seen.len() >= 2,
            "64 sleepy items stayed on {} worker(s)",
            seen.len()
        );
    }

    #[test]
    fn join_outside_any_pool_is_sequential_and_correct() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn join_inside_pool_handles_nesting() {
        let p = pool(2);
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(p.install(|| fib(16)), 987);
    }

    #[test]
    fn dropping_pool_joins_workers() {
        let p = pool(3);
        assert_eq!(p.install(|| 7), 7);
        drop(p); // must not hang or leak panics
    }
}
