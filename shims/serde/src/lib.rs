//! Offline stand-in for the `serde` crate: the `Serialize`/`Deserialize`
//! trait names plus no-op derive macros of the same names, so
//! `use serde::{Deserialize, Serialize};` and
//! `#[derive(Serialize, Deserialize)]` compile unchanged. No serializer
//! backends exist; the workspace's I/O is hand-rolled (VTK text, binary
//! snapshots) and never consumes these traits.

pub use serde_derive::{Deserialize, Serialize};

/// Marker mirror of `serde::Serialize` (no methods; never implemented by
/// the no-op derive).
pub trait Serialize {}

/// Marker mirror of `serde::Deserialize`.
pub trait Deserialize<'de> {}
