//! Offline stand-in for `serde_derive`: the derives parse nothing and
//! emit nothing, so `#[derive(Serialize, Deserialize)]` compiles without
//! generating trait impls. Nothing in the workspace consumes the traits
//! as bounds (I/O is hand-rolled VTK/binary), so empty expansions are
//! sufficient until the real serde is vendored. The derives register
//! the `serde` helper attribute so field annotations like
//! `#[serde(skip)]` parse (and are ignored, like everything else).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
