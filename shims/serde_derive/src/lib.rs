//! Offline stand-in for `serde_derive`: the derives parse nothing and
//! emit nothing, so `#[derive(Serialize, Deserialize)]` compiles without
//! generating trait impls. Nothing in the workspace consumes the traits
//! as bounds (I/O is hand-rolled VTK/binary), so empty expansions are
//! sufficient until the real serde is vendored.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
