//! `bookleaf` — the real-BookLeaf driver shape: one binary, scenarios
//! as input decks.
//!
//! ```text
//! bookleaf run <deck> [--ranks N] [--threads N] [--final-time T]
//!                     [--max-steps N] [--checkpoint-every N]
//!                     [--checkpoint-to PATH] [--resume CKPT]
//! ```
//!
//! The deck file is a text input deck — a named problem or the full
//! generic vocabulary (see `bookleaf::core::input`). Typed errors land
//! on stderr with the deck path and, where the parser anchored one, the
//! 1-based line (`path:line: message`); a completed run prints a
//! one-line JSON report digest (steps, time, energy accounting, a
//! CRC-32 over the full solution state) to stdout. Exit codes: 0 on
//! success, 1 for deck/run errors, 2 for usage errors.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use bookleaf::serve::state_crc;
use bookleaf::util::DeckError;
use bookleaf::{Checkpoint, ExecutorKind, InputDeck, RunReport, Simulation};

const USAGE: &str = "\
usage: bookleaf run <deck> [options]

Run the input deck at <deck> to completion and print a report digest.

options:
  --ranks N             distributed ranks (flat MPI unless --threads)
  --threads N           threads per rank (hybrid executor)
  --final-time T        override the deck's final time
  --max-steps N         override the deck's step budget
  --checkpoint-every N  checkpoint every N steps while running
  --checkpoint-to PATH  checkpoint path (default: <deck>.ckpt)
  --resume CKPT         resume from a checkpoint written by this deck
";

struct RunArgs {
    deck: PathBuf,
    ranks: Option<usize>,
    threads: Option<usize>,
    final_time: Option<f64>,
    max_steps: Option<usize>,
    checkpoint_every: Option<usize>,
    checkpoint_to: Option<PathBuf>,
    resume: Option<PathBuf>,
}

fn usage_err(message: impl Into<String>) -> String {
    format!("bookleaf: {}\n\n{USAGE}", message.into())
}

fn parse_args(mut args: std::env::Args) -> Result<RunArgs, String> {
    args.next(); // argv[0]
    let Some(command) = args.next() else {
        return Err(usage_err("no command given"));
    };
    match command.as_str() {
        "run" => {}
        "--help" | "-h" | "help" => return Err(USAGE.to_string()),
        other => return Err(usage_err(format!("unknown command `{other}`"))),
    }
    let mut parsed = RunArgs {
        deck: PathBuf::new(),
        ranks: None,
        threads: None,
        final_time: None,
        max_steps: None,
        checkpoint_every: None,
        checkpoint_to: None,
        resume: None,
    };
    let mut deck: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| usage_err(format!("{flag} needs a value")))
        };
        let num = |flag: &str, v: String| {
            v.parse::<usize>()
                .map_err(|_| usage_err(format!("{flag} expects an integer, got `{v}`")))
        };
        match arg.as_str() {
            "--ranks" => parsed.ranks = Some(num("--ranks", value("--ranks")?)?),
            "--threads" => parsed.threads = Some(num("--threads", value("--threads")?)?),
            "--max-steps" => parsed.max_steps = Some(num("--max-steps", value("--max-steps")?)?),
            "--checkpoint-every" => {
                parsed.checkpoint_every =
                    Some(num("--checkpoint-every", value("--checkpoint-every")?)?);
            }
            "--checkpoint-to" => parsed.checkpoint_to = Some(value("--checkpoint-to")?.into()),
            "--resume" => parsed.resume = Some(value("--resume")?.into()),
            "--final-time" => {
                let v = value("--final-time")?;
                let t = v
                    .parse::<f64>()
                    .map_err(|_| usage_err(format!("--final-time expects a number, got `{v}`")))?;
                parsed.final_time = Some(t);
            }
            other if other.starts_with('-') => {
                return Err(usage_err(format!("unknown option `{other}`")));
            }
            _ => {
                if deck.replace(arg.into()).is_some() {
                    return Err(usage_err("more than one deck path given"));
                }
            }
        }
    }
    let Some(deck) = deck else {
        return Err(usage_err("no deck path given"));
    };
    parsed.deck = deck;
    Ok(parsed)
}

/// Render a deck error with the deck path (and line where anchored).
fn deck_error(path: &std::path::Path, err: &DeckError) -> String {
    match err {
        DeckError::Text { line, message } => {
            format!("bookleaf: {}:{line}: {message}", path.display())
        }
        other => format!("bookleaf: {}: {other}", path.display()),
    }
}

fn executor_override(args: &RunArgs) -> Option<ExecutorKind> {
    match (args.ranks, args.threads) {
        (None, None) => None,
        (Some(ranks), None) => Some(ExecutorKind::FlatMpi { ranks }),
        (Some(ranks), Some(threads)) => Some(ExecutorKind::Hybrid {
            ranks,
            threads_per_rank: threads,
        }),
        (None, Some(threads)) => Some(ExecutorKind::Hybrid {
            ranks: 1,
            threads_per_rank: threads,
        }),
    }
}

fn digest(deck_path: &std::path::Path, report: &RunReport, crc: u32) -> String {
    let executor = match report.executor {
        ExecutorKind::Serial => "serial".to_string(),
        ExecutorKind::FlatMpi { ranks } => format!("flat_mpi:{ranks}"),
        ExecutorKind::Hybrid {
            ranks,
            threads_per_rank,
        } => format!("hybrid:{ranks}x{threads_per_rank}"),
    };
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"status\":\"ok\",\"deck\":\"{}\",\"name\":\"{}\",\"executor\":\"{executor}\",\
         \"ranks\":{},\"steps\":{},\"time\":{:.17e},\"time_bits\":\"0x{:016x}\",\
         \"energy_start\":{:.17e},\"energy_end\":{:.17e},\"energy_drift\":{:.3e},\
         \"state_crc\":{crc},\"wall_ms\":{:.3}}}",
        deck_path.display(),
        report.name,
        report.ranks,
        report.steps,
        report.time,
        report.time.to_bits(),
        report.energy_start,
        report.energy_end,
        report.energy_drift(),
        report.wall_seconds * 1e3,
    );
    out
}

fn run(args: &RunArgs) -> Result<(), String> {
    let text = std::fs::read_to_string(&args.deck)
        .map_err(|e| format!("bookleaf: {}: {e}", args.deck.display()))?;
    let input: InputDeck = text.parse().map_err(|e| deck_error(&args.deck, &e))?;

    let mut builder = Simulation::builder();
    if let Some(ckpt_path) = &args.resume {
        // The checkpoint embeds the deck it was written under; the deck
        // on the command line must describe the same problem, so a
        // stale path fails loudly instead of silently resuming
        // something else.
        let ckpt = Checkpoint::read_from(ckpt_path)
            .map_err(|e| format!("bookleaf: {}: {e}", ckpt_path.display()))?;
        if ckpt.input.problem != input.problem {
            return Err(format!(
                "bookleaf: {}: checkpoint was written by deck `{}`, but {} describes `{}`",
                ckpt_path.display(),
                ckpt.input.problem.name(),
                args.deck.display(),
                input.problem.name()
            ));
        }
        builder = builder.resume_from(ckpt);
    } else {
        builder = builder.deck_input(input);
    }
    if let Some(executor) = executor_override(args) {
        builder = builder.executor(executor);
    }
    if let Some(t) = args.final_time {
        builder = builder.final_time(t);
    }
    if let Some(n) = args.max_steps {
        builder = builder.max_steps(n);
    }

    let mut sim = builder
        .build()
        .map_err(|e| format!("bookleaf: {}: {e}", args.deck.display()))?;

    let run_err = |e| format!("bookleaf: {}: run failed: {e}", args.deck.display());
    let report = match args.checkpoint_every {
        None => sim.run().map_err(run_err)?,
        Some(every) => {
            let ckpt_path = args.checkpoint_to.clone().unwrap_or_else(|| {
                let mut p = args.deck.clone().into_os_string();
                p.push(".ckpt");
                PathBuf::from(p)
            });
            let every = every.max(1);
            loop {
                let report = sim.run_segment(every).map_err(run_err)?;
                if sim.complete() {
                    break report;
                }
                sim.checkpoint_to(&ckpt_path)
                    .map_err(|e| format!("bookleaf: {}: {e}", ckpt_path.display()))?;
            }
        }
    };

    println!("{}", digest(&args.deck, &report, state_crc(&sim)));
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(1)
        }
    }
}
