//! # BookLeaf-rs
//!
//! A Rust reproduction of **BookLeaf** (Truby et al., 2018): a 2-D
//! unstructured Arbitrary Lagrangian–Eulerian (ALE) shock-hydrodynamics
//! mini-application, including every substrate the paper's evaluation
//! depends on.
//!
//! This facade crate re-exports the workspace's public API under one roof:
//!
//! * [`mesh`] — unstructured quadrilateral mesh, generation, geometry;
//! * [`eos`] — equations of state (ideal gas, Tait, JWL, void);
//! * [`partition`] — RCB and multilevel graph mesh decomposition;
//! * [`typhon`] — the distributed communication runtime (halo exchange,
//!   global reductions) over rank threads;
//! * [`hydro`] — the Lagrangian kernels (`getdt`, `getq`, `getforce`, …);
//! * [`ale`] — the swept-volume remap;
//! * [`core`] — the front door: [`Simulation`] and its builder, the
//!   five standard decks, text input decks, observers, and the
//!   programming-model executors;
//! * [`device`] — hardware performance models for the paper's platforms;
//! * [`validate`] — analytic solutions and error norms;
//! * [`util`] — shared numerics;
//! * [`serve`] — the hardened multi-tenant simulation service
//!   (admission control, deadlines, tenant quarantine, graceful drain).
//!
//! ## Quickstart
//!
//! One builder drives every executor — swap `.executor(..)` and nothing
//! else changes:
//!
//! ```
//! use bookleaf::{ExecutorKind, Simulation};
//! use bookleaf::core::decks;
//!
//! // Small Sod shock tube, Lagrangian frame, serial execution.
//! let mut sim = Simulation::builder()
//!     .deck(decks::sod(40, 4))               // or .deck_str(..) / .deck_file(..)
//!     .executor(ExecutorKind::Serial)        // or FlatMpi { .. } / Hybrid { .. }
//!     .final_time(0.05)
//!     .build()
//!     .expect("valid deck");
//! let report = sim.run().expect("run to completion");
//! assert!(report.steps > 0);
//! assert!(report.energy_drift() < 1e-9);
//! // The solution (assembled globally for distributed runs):
//! assert!(sim.state().rho.iter().all(|r| r.is_finite()));
//! ```
//!
//! Runs are driven by *input decks* — text files, like the reference
//! code — via [`SimulationBuilder::deck_file`], and instrumented with
//! [`Observer`]s (conservation tracer, dt history, VTK frame dumper,
//! progress logger ship in [`core::observer`]):
//!
//! ```
//! use bookleaf::{ConservationTracer, Shared, Simulation};
//!
//! let deck = "
//!     problem = noh
//!     n = 12
//!     [control]
//!     final_time = 0.02
//! ";
//! let tracer = Shared::new(ConservationTracer::new());
//! let mut sim = Simulation::builder()
//!     .deck_str(deck)
//!     .observer(tracer.clone())
//!     .build()
//!     .expect("valid deck");
//! sim.run().expect("run to completion");
//! assert!(tracer.with(|t| t.max_drift()) < 1e-6);
//! ```

pub use bookleaf_ale as ale;
pub use bookleaf_core as core;
pub use bookleaf_device as device;
pub use bookleaf_eos as eos;
pub use bookleaf_hydro as hydro;
pub use bookleaf_mesh as mesh;
pub use bookleaf_partition as partition;
pub use bookleaf_serve as serve;
pub use bookleaf_typhon as typhon;
pub use bookleaf_util as util;
pub use bookleaf_validate as validate;

// The front-door types, re-exported at the crate root so `use
// bookleaf::Simulation;` is all a downstream user needs.
pub use bookleaf_core::{
    Checkpoint, ConservationTracer, Deck, DtHistory, ExecutorKind, FrameDumper, GenericSpec,
    InputDeck, Observer, ProblemSpec, ProgressLogger, RunConfig, RunReport, Shared, Simulation,
    SimulationBuilder, StepPhase, StepView, CHECKPOINT_VERSION,
};
pub use bookleaf_util::CheckpointError;
