//! # BookLeaf-rs
//!
//! A Rust reproduction of **BookLeaf** (Truby et al., 2018): a 2-D
//! unstructured Arbitrary Lagrangian–Eulerian (ALE) shock-hydrodynamics
//! mini-application, including every substrate the paper's evaluation
//! depends on.
//!
//! This facade crate re-exports the workspace's public API under one roof:
//!
//! * [`mesh`] — unstructured quadrilateral mesh, generation, geometry;
//! * [`eos`] — equations of state (ideal gas, Tait, JWL, void);
//! * [`partition`] — RCB and multilevel graph mesh decomposition;
//! * [`typhon`] — the distributed communication runtime (halo exchange,
//!   global reductions) over rank threads;
//! * [`hydro`] — the Lagrangian kernels (`getdt`, `getq`, `getforce`, …);
//! * [`ale`] — the swept-volume remap;
//! * [`core`] — the driver: predictor–corrector loop, the four standard
//!   decks, and the programming-model executors;
//! * [`device`] — hardware performance models for the paper's platforms;
//! * [`validate`] — analytic solutions and error norms;
//! * [`util`] — shared numerics.
//!
//! ## Quickstart
//!
//! ```
//! use bookleaf::core::{decks, Driver, RunConfig};
//!
//! // Small Sod shock tube, Lagrangian frame, serial execution.
//! let deck = decks::sod(40, 4);
//! let config = RunConfig { final_time: 0.05, ..RunConfig::default() };
//! let mut driver = Driver::new(deck, config).expect("valid deck");
//! let summary = driver.run().expect("run to completion");
//! assert!(summary.steps > 0);
//! ```

pub use bookleaf_ale as ale;
pub use bookleaf_core as core;
pub use bookleaf_device as device;
pub use bookleaf_eos as eos;
pub use bookleaf_hydro as hydro;
pub use bookleaf_mesh as mesh;
pub use bookleaf_partition as partition;
pub use bookleaf_typhon as typhon;
pub use bookleaf_util as util;
pub use bookleaf_validate as validate;
