//! The restart matrix: portable checkpoint/restart with elastic
//! repartitioning, pinned shape by shape.
//!
//! The killer property: run Noh to t/2, checkpoint, resume under a
//! *different* executor shape, and match the uninterrupted serial run
//! — bitwise when the shape is unchanged, to 1e-12 across shape
//! changes (the same tolerance `tests/hybrid_determinism.rs` pins for
//! serial-vs-distributed agreement). CI runs this file as the
//! `restart-matrix` job and uploads the checkpoint it produces as an
//! artifact.
//!
//! Alongside the matrix: the committed golden fixture
//! `tests/fixtures/noh_v1.ckpt` pins the on-disk format (version bumps
//! must be deliberate), and the failure-path tests pin that malformed
//! files always surface as typed [`CheckpointError`]s, never panics.

use std::path::PathBuf;

use bookleaf::core::decks;
use bookleaf::{
    Checkpoint, CheckpointError, ExecutorKind, ProblemSpec, Simulation, CHECKPOINT_VERSION,
};
use proptest::prelude::*;

/// Pause/resume agreement tolerance across executor-shape changes.
const TOL: f64 = 1e-12;
/// The matrix problem: Noh on a 16×16 mesh to t = 0.05.
const FINAL_TIME: f64 = 0.05;

fn tmp(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name)
}

fn noh_builder() -> bookleaf::SimulationBuilder {
    Simulation::builder()
        .deck(decks::noh(16))
        .final_time(FINAL_TIME)
}

/// The uninterrupted serial reference run and its step count.
fn reference() -> (Simulation, usize) {
    let mut sim = noh_builder().build().unwrap();
    let report = sim.run().unwrap();
    assert!(report.steps >= 4, "reference too short to halve");
    (sim, report.steps)
}

/// Run to `steps` under `executor`, write a checkpoint file, return its
/// path.
fn checkpoint_at(steps: usize, executor: ExecutorKind, file: &str) -> PathBuf {
    let mut sim = noh_builder()
        .executor(executor)
        .max_steps(steps)
        .build()
        .unwrap();
    let report = sim.run().unwrap();
    assert_eq!(report.steps, steps, "pause landed on the wrong step");
    assert!(report.time < FINAL_TIME, "pause ran past the final time");
    let path = tmp(file);
    sim.checkpoint_to(&path).unwrap();
    path
}

/// Resume a checkpoint file under `executor` and run to completion.
fn resume(path: &PathBuf, executor: ExecutorKind) -> Simulation {
    let mut sim = Simulation::builder()
        .resume(path)
        .executor(executor)
        .max_steps(100_000)
        .build()
        .unwrap();
    let report = sim.run().unwrap();
    assert!(
        (report.time - FINAL_TIME).abs() < 1e-12,
        "resumed run stopped at t = {}",
        report.time
    );
    sim
}

/// Every field of the resumed solution within `tol` of the reference
/// (absolute, per entity — the hybrid-determinism contract).
fn assert_matches(reference: &Simulation, resumed: &Simulation, tol: f64, label: &str) {
    let (a, b) = (reference.state(), resumed.state());
    for e in 0..a.rho.len() {
        assert!(
            (a.rho[e] - b.rho[e]).abs() <= tol,
            "{label}: rho diverged at element {e}: {} vs {}",
            a.rho[e],
            b.rho[e]
        );
        assert!(
            (a.ein[e] - b.ein[e]).abs() <= tol,
            "{label}: ein diverged at element {e}"
        );
        assert!(
            (a.pressure[e] - b.pressure[e]).abs() <= tol,
            "{label}: pressure diverged at element {e}"
        );
    }
    for n in 0..a.u.len() {
        assert!(
            (a.u[n] - b.u[n]).norm() <= tol,
            "{label}: velocity diverged at node {n}"
        );
        assert!(
            reference.mesh().nodes[n].distance(resumed.mesh().nodes[n]) <= tol,
            "{label}: position diverged at node {n}"
        );
    }
}

// ---------------------------------------------------------------- matrix

/// Same shape, no repartition: pausing at a step boundary and resuming
/// through the file must move **no bits** relative to never pausing.
#[test]
fn serial_to_serial_resume_is_bitwise() {
    let (reference, steps) = reference();
    let path = checkpoint_at(steps / 2, ExecutorKind::Serial, "noh_serial_half.ckpt");
    let resumed = resume(&path, ExecutorKind::Serial);
    let (a, b) = (reference.state(), resumed.state());
    for e in 0..a.rho.len() {
        assert_eq!(
            a.rho[e].to_bits(),
            b.rho[e].to_bits(),
            "rho not bitwise at element {e}"
        );
        assert_eq!(
            a.ein[e].to_bits(),
            b.ein[e].to_bits(),
            "ein not bitwise at element {e}"
        );
    }
    for n in 0..a.u.len() {
        assert_eq!(
            a.u[n].x.to_bits(),
            b.u[n].x.to_bits(),
            "u.x not bitwise at node {n}"
        );
        assert_eq!(
            a.u[n].y.to_bits(),
            b.u[n].y.to_bits(),
            "u.y not bitwise at node {n}"
        );
        assert_eq!(
            reference.mesh().nodes[n].x.to_bits(),
            resumed.mesh().nodes[n].x.to_bits(),
            "node x not bitwise at node {n}"
        );
    }
}

/// Serial checkpoint, resumed across 4 ranks (the state is
/// repartitioned through RCB + the halo machinery).
#[test]
fn serial_checkpoint_resumes_on_four_ranks() {
    let (reference, steps) = reference();
    let path = checkpoint_at(steps / 2, ExecutorKind::Serial, "noh_1to4.ckpt");
    let resumed = resume(&path, ExecutorKind::FlatMpi { ranks: 4 });
    assert_matches(&reference, &resumed, TOL, "1 -> 4");
}

/// 4-rank checkpoint (assembled global view), resumed serially.
#[test]
fn four_rank_checkpoint_resumes_serially() {
    let (reference, steps) = reference();
    let path = checkpoint_at(
        steps / 2,
        ExecutorKind::FlatMpi { ranks: 4 },
        "noh_4to1.ckpt",
    );
    let resumed = resume(&path, ExecutorKind::Serial);
    assert_matches(&reference, &resumed, TOL, "4 -> 1");
}

/// Rank-count change without passing through serial: 2 -> 4.
#[test]
fn two_rank_checkpoint_resumes_on_four_ranks() {
    let (reference, steps) = reference();
    let path = checkpoint_at(
        steps / 2,
        ExecutorKind::FlatMpi { ranks: 2 },
        "noh_2to4.ckpt",
    );
    let resumed = resume(&path, ExecutorKind::FlatMpi { ranks: 4 });
    assert_matches(&reference, &resumed, TOL, "2 -> 4");
}

/// A resume with no overrides continues the embedded configuration —
/// the checkpoint is self-contained.
#[test]
fn resume_without_overrides_continues_the_embedded_config() {
    let mut sim = noh_builder().build().unwrap();
    sim.run().unwrap();
    let path = tmp("noh_complete.ckpt");
    sim.checkpoint_to(&path).unwrap();

    // The embedded deck carries problem, final time and executor; the
    // resumed simulation reports the same effective configuration.
    let resumed = Simulation::builder().resume(&path).build().unwrap();
    assert!((resumed.config().final_time - FINAL_TIME).abs() < 1e-15);
    assert!(matches!(resumed.config().executor, ExecutorKind::Serial));
    assert!(matches!(
        resumed.input_deck().unwrap().problem,
        ProblemSpec::Noh { n: 16 }
    ));
}

// ------------------------------------------------------------- fixture

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/noh_v1.ckpt")
}

fn fixture_checkpoint() -> Checkpoint {
    let mut sim = Simulation::builder()
        .deck(decks::noh(8))
        .final_time(0.03)
        .max_steps(10)
        .build()
        .unwrap();
    sim.run().unwrap();
    sim.checkpoint().unwrap()
}

/// Format-stability pin: the committed v1 fixture must keep parsing,
/// carry the expected contents, and re-encode **byte-identically**.
/// If this test fails, the on-disk format changed: bump
/// `CHECKPOINT_VERSION`, keep a reader for v1, and regenerate the
/// fixture (`cargo test --test checkpoint_restart -- --ignored`)
/// deliberately.
#[test]
fn golden_fixture_noh_v1_still_parses_and_reencodes_byte_identically() {
    let bytes = std::fs::read(fixture_path()).expect(
        "tests/fixtures/noh_v1.ckpt missing; regenerate with \
         cargo test --test checkpoint_restart -- --ignored",
    );
    assert_eq!(CHECKPOINT_VERSION, 1, "version bumped: regenerate fixture");
    let ckpt = Checkpoint::from_bytes(&bytes).expect("golden fixture no longer parses");
    assert!(matches!(ckpt.input.problem, ProblemSpec::Noh { n: 8 }));
    assert_eq!(ckpt.snap.steps, 10);
    assert_eq!(ckpt.snap.n_nodes(), 9 * 9);
    assert_eq!(ckpt.snap.n_elements(), 8 * 8);
    assert!(ckpt.snap.time > 0.0);
    assert_eq!(
        ckpt.to_bytes(),
        bytes,
        "checkpoint encoding changed without a version bump"
    );

    // The fixture must also still *run*: resume and finish the problem.
    let mut sim = Simulation::builder()
        .resume_from(ckpt)
        .max_steps(100_000)
        .build()
        .unwrap();
    let report = sim.run().unwrap();
    assert!((report.time - 0.03).abs() < 1e-12);
    assert!(sim.state().rho.iter().all(|r| r.is_finite() && *r > 0.0));
}

/// The checkpoint produced today must match the committed fixture
/// byte for byte — the writer is deterministic and format-stable.
#[test]
fn writer_reproduces_the_golden_fixture() {
    let committed = std::fs::read(fixture_path()).unwrap();
    assert_eq!(
        fixture_checkpoint().to_bytes(),
        committed,
        "writer output drifted from tests/fixtures/noh_v1.ckpt"
    );
}

/// Regenerate the committed fixture after a *deliberate* format change:
/// `cargo test --test checkpoint_restart -- --ignored`.
#[test]
#[ignore = "writes tests/fixtures/noh_v1.ckpt; run only on deliberate format changes"]
fn regenerate_golden_fixture() {
    std::fs::create_dir_all(fixture_path().parent().unwrap()).unwrap();
    std::fs::write(fixture_path(), fixture_checkpoint().to_bytes()).unwrap();
}

// ------------------------------------------------------- failure paths

/// A cheap valid checkpoint for corruption tests (no time stepping).
fn small_checkpoint_bytes() -> Vec<u8> {
    Simulation::builder()
        .deck(decks::noh(6))
        .build()
        .unwrap()
        .checkpoint()
        .unwrap()
        .to_bytes()
}

#[test]
fn truncated_files_are_typed_errors() {
    let bytes = small_checkpoint_bytes();
    for cut in [0, 1, 7, 8, 11, 15, bytes.len() / 2, bytes.len() - 1] {
        match Checkpoint::from_bytes(&bytes[..cut]) {
            Err(
                CheckpointError::Truncated { .. }
                | CheckpointError::Corrupt { .. }
                | CheckpointError::BadMagic,
            ) => {}
            other => panic!("cut at {cut}: expected a typed error, got {other:?}"),
        }
    }
}

#[test]
fn corrupted_header_is_rejected() {
    let mut bytes = small_checkpoint_bytes();
    bytes[0] ^= 0xFF;
    assert!(matches!(
        Checkpoint::from_bytes(&bytes),
        Err(CheckpointError::BadMagic)
    ));
}

#[test]
fn future_versions_are_rejected_with_both_versions_named() {
    let mut bytes = small_checkpoint_bytes();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    match Checkpoint::from_bytes(&bytes) {
        Err(CheckpointError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 99);
            assert_eq!(supported, CHECKPOINT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn snapshot_not_matching_its_deck_is_rejected() {
    // Pair a Sod snapshot with a Noh deck by hand; the builder must
    // refuse with a typed mismatch, whatever path the checkpoint took.
    let sod = Simulation::builder()
        .deck(decks::sod(8, 2))
        .build()
        .unwrap()
        .checkpoint()
        .unwrap();
    let noh = Simulation::builder()
        .deck(decks::noh(6))
        .build()
        .unwrap()
        .checkpoint()
        .unwrap();
    let franken = Checkpoint {
        input: noh.input,
        snap: sod.snap,
    };
    let err = Simulation::builder()
        .resume_from(franken)
        .build()
        .unwrap_err();
    assert!(
        err.to_string().contains("nodes"),
        "expected a shape mismatch, got: {err}"
    );
}

/// A generic-vocabulary deck carries its full `ProblemSpec` through the
/// checkpoint file: pause, resume through disk, and land **bitwise** on
/// the uninterrupted run — exactly like the named problems.
#[test]
fn generic_decks_round_trip_through_checkpoints() {
    const DECK: &str = "\
        name = implosion\n\
        [mesh]\n\
        nx = 8\n\
        ny = 8\n\
        [material.gas]\n\
        eos = ideal_gas\n\
        gamma = 1.4\n\
        [region.core]\n\
        shape = circle\n\
        cx = 0\n\
        cy = 0\n\
        r = 0.4\n\
        material = gas\n\
        rho = 1.5\n\
        ein = 1\n\
        u_radial = -0.5\n\
        [region.ambient]\n\
        shape = rect\n\
        x0 = 0\n\
        y0 = 0\n\
        x1 = 1\n\
        y1 = 1\n\
        material = gas\n\
        rho = 1\n\
        ein = 0.1\n\
        [control]\n\
        final_time = 1\n\
        max_steps = 12\n";

    let mut reference = Simulation::builder().deck_str(DECK).build().unwrap();
    assert_eq!(reference.run().unwrap().steps, 12);

    let mut paused = Simulation::builder()
        .deck_str(DECK)
        .max_steps(6)
        .build()
        .unwrap();
    paused.run().unwrap();
    let path = tmp("generic_half.ckpt");
    paused.checkpoint_to(&path).unwrap();

    // The file embeds the generic spec itself, not a named stand-in.
    let ckpt = Checkpoint::read_from(&path).unwrap();
    let input: bookleaf::InputDeck = DECK.parse().unwrap();
    assert_eq!(ckpt.input.problem, input.problem);
    assert!(
        matches!(ckpt.input.problem, ProblemSpec::Generic(_)),
        "checkpoint lost the generic spec: {:?}",
        ckpt.input.problem
    );

    let mut resumed = Simulation::builder()
        .resume(&path)
        .max_steps(12)
        .build()
        .unwrap();
    assert_eq!(resumed.run().unwrap().steps, 12);
    assert_matches(&reference, &resumed, 0.0, "generic resume");
}

#[test]
fn hand_built_decks_cannot_be_checkpointed() {
    use bookleaf::eos::{EosSpec, MaterialTable};
    use bookleaf::mesh::{generate_rect, RectSpec};
    use bookleaf::util::Vec2;
    let mesh = generate_rect(&RectSpec::unit_square(4), |_| 0).unwrap();
    let deck = bookleaf::core::Deck {
        name: "hand-built".to_string(),
        materials: MaterialTable::single(EosSpec::ideal_gas(1.4)),
        rho: vec![1.0; mesh.n_elements()],
        ein: vec![1.0; mesh.n_elements()],
        u: vec![Vec2::ZERO; mesh.n_nodes()],
        piston: None,
        recommended_final_time: 0.1,
        spec: None,
        mesh,
    };
    let sim = Simulation::builder().deck(deck).build().unwrap();
    let err = sim.checkpoint().unwrap_err();
    assert!(
        err.to_string().contains("problem spec"),
        "expected the no-spec refusal, got: {err}"
    );
}

#[test]
fn missing_file_is_a_typed_io_error() {
    let err = Simulation::builder()
        .resume(tmp("does_not_exist.ckpt"))
        .build()
        .unwrap_err();
    assert!(
        err.to_string().contains("does_not_exist.ckpt"),
        "error should name the file: {err}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Any single flipped byte is *detected* (the trailing CRC-32
    /// catches every 1-byte corruption) and surfaces as a typed error —
    /// never a panic, never a silently-wrong resume.
    #[test]
    fn random_byte_flips_never_panic_and_never_parse(
        pos in 0usize..4096,
        flip in 1u8..255,
    ) {
        let mut bytes = small_checkpoint_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        prop_assert!(
            Checkpoint::from_bytes(&bytes).is_err(),
            "flip of byte {pos} by {flip:#04x} went undetected"
        );
    }
}
