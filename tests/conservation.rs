//! Conservation and symmetry invariants over full runs — the properties
//! the compatible discretisation (Barlow 2008) exists to guarantee.

use bookleaf::core::{decks, ExecutorKind, RunConfig, Simulation};
use bookleaf::hydro::LocalRange;
use bookleaf::util::{approx_eq, Vec2};

#[test]
fn every_standard_deck_conserves_energy() {
    // (Saltzmann excluded: the driven piston does external work by
    // design; its energy balance is tested separately below.)
    for (deck, t) in [
        (decks::sod(60, 3), 0.2),
        (decks::noh(30), 0.3),
        (decks::sedov(24), 0.3),
        (decks::underwater(24), 0.004),
    ] {
        let name = deck.name.clone();
        let config = RunConfig {
            final_time: t,
            ..RunConfig::default()
        };
        let mut driver = Simulation::builder()
            .deck(deck)
            .config(config)
            .build()
            .unwrap();
        let s = driver.run().unwrap();
        assert!(
            s.energy_drift() < 1e-8,
            "{name}: energy drift {} over {} steps",
            s.energy_drift(),
            s.steps
        );
    }
}

#[test]
fn piston_work_matches_energy_gain() {
    // The Saltzmann piston does work W = integral F_piston . u_p dt on the
    // gas; with u_p = 1 and the exact post-shock state, W(t) =
    // rho0 * D * t * up^2 * (gamma+1)/2 / ... — rather than the closed
    // form, check the energy *gain* equals the momentum-flux work to
    // ~10% (discretisation + startup transient).
    let deck = decks::saltzmann(100, 10);
    let t = 0.3;
    let config = RunConfig {
        final_time: t,
        ..RunConfig::default()
    };
    let mut driver = Simulation::builder()
        .deck(deck)
        .config(config)
        .build()
        .unwrap();
    let s = driver.run().unwrap();
    let gain = s.energy_end - s.energy_start;
    // Exact: strong shock, up = 1, gamma = 5/3: post-shock plateau has
    // rho2 = 4, e = up^2/2 = 0.5, speed D = 4/3. Energy per unit piston
    // area per time = rho0 * D * (e + up^2/2) = 1 * 4/3 * 1 = 4/3.
    // Tube height 0.1: dE/dt = 0.1333; at t = 0.3: 0.04.
    let exact = 0.1 * (4.0 / 3.0) * t;
    assert!(
        (gain - exact).abs() < 0.1 * exact,
        "piston work: gained {gain:.5}, exact {exact:.5}"
    );
}

#[test]
fn x_momentum_conserved_in_symmetric_collision() {
    // Two equal gases colliding head-on inside a periodic-free box: net
    // x momentum starts at 0 and must stay 0 (walls only absorb normal
    // momentum symmetrically).
    let mut deck = decks::sod(40, 4);
    // Make states symmetric and give them opposing velocities.
    for e in 0..deck.mesh.n_elements() {
        deck.rho[e] = 1.0;
        deck.ein[e] = 2.5;
    }
    let nodes = deck.mesh.nodes.clone();
    for (n, u) in deck.u.iter_mut().enumerate() {
        let bc = deck.mesh.node_bc[n];
        // Antisymmetric about the collision plane; the plane itself is
        // at rest (otherwise the initial momentum is not zero).
        let dir = if (nodes[n].x - 0.5).abs() < 1e-12 {
            0.0
        } else if nodes[n].x < 0.5 {
            1.0
        } else {
            -1.0
        };
        *u = bc.apply(Vec2::new(0.3 * dir, 0.0));
    }
    let config = RunConfig {
        final_time: 0.15,
        ..RunConfig::default()
    };
    let mut driver = Simulation::builder()
        .deck(deck)
        .config(config)
        .build()
        .unwrap();
    driver.run().unwrap();

    let mesh = driver.mesh();
    let st = driver.state();
    let mut px = 0.0;
    for n in 0..mesh.n_nodes() {
        px += st.nd_mass[n] * st.u[n].x;
    }
    assert!(px.abs() < 1e-7, "net x momentum {px:.3e}"); // round-off accumulation only
                                                         // And the collision really happened: centre compressed.
    let mid = 20; // element at the collision plane, bottom row
    assert!(
        st.rho[mid] > 1.05,
        "no collision compression: {}",
        st.rho[mid]
    );
}

#[test]
fn rho_v_equals_mass_everywhere_always() {
    // The mass-coordinate identity after an eventful run.
    let deck = decks::sedov(20);
    let config = RunConfig {
        final_time: 0.4,
        ..RunConfig::default()
    };
    let mut driver = Simulation::builder()
        .deck(deck)
        .config(config)
        .build()
        .unwrap();
    driver.run().unwrap();
    let st = driver.state();
    for e in 0..st.rho.len() {
        assert!(
            approx_eq(st.rho[e] * st.volume[e], st.mass[e], 1e-12),
            "identity broken at {e}"
        );
    }
}

#[test]
fn distributed_conservation_matches_serial() {
    let deck = decks::noh(24);
    let config = RunConfig {
        final_time: 0.1,
        executor: ExecutorKind::FlatMpi { ranks: 3 },
        ..RunConfig::default()
    };
    let mut dist = Simulation::builder()
        .deck(deck.clone())
        .config(config)
        .build()
        .unwrap();
    let report = dist.run().unwrap();
    // The unified report carries the *global* energy accounting for the
    // distributed run (every owned element and node counted once).
    assert!(
        report.energy_drift() < 1e-8,
        "drift {}",
        report.energy_drift()
    );
    let serial_config = RunConfig {
        final_time: 0.1,
        ..RunConfig::default()
    };
    let mut serial = Simulation::builder()
        .deck(deck.clone())
        .config(serial_config)
        .build()
        .unwrap();
    serial.run().unwrap();
    let range = LocalRange::whole(serial.mesh());
    let serial_mass = serial.state().total_mass(range);
    // Total mass assembled from the distributed run equals the serial
    // run's (densities from the assembled view, volumes from the serial
    // geometry identity).
    let mut mass = 0.0;
    for e in 0..deck.mesh.n_elements() {
        mass += dist.state().rho[e] * serial.state().volume[e];
    }
    assert!(
        approx_eq(mass, serial_mass, 1e-9),
        "{mass} vs {serial_mass}"
    );
}
