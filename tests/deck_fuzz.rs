//! Property-based deck fuzzer: generate random **valid** generic decks
//! and check the invariants that must hold for *any* deck —
//! scenarios are a generator, not a list.
//!
//! Per random deck:
//! * the canonical text form round-trips exactly (value- and
//!   byte-level);
//! * the deck builds, runs, and time advances (every dt > 0);
//! * with reflective walls and no driven boundaries, energy is
//!   conserved to roundoff;
//! * a serial run and a hybrid (2 ranks × 2 threads) run agree at
//!   1e-12;
//! * symmetric setups (mirror-symmetric about the x = y diagonal)
//!   stay symmetric under transposition of the solution.
//!
//! The deck generator is *constructive*: every draw yields a valid
//! deck by design (one bounded feature region layered over a
//! whole-domain ambient region, so coverage and shadowing errors are
//! impossible), rather than drawing freely and discarding failures.

use bookleaf::core::scenario::{
    BoundarySpec, EnergyInit, GenericSpec, MeshSpec, NamedMaterial, RegionSpec, Shape, VelocityInit,
};
use bookleaf::eos::EosSpec;
use bookleaf::util::Vec2;
use bookleaf::{ExecutorKind, InputDeck, ProblemSpec, Simulation};
use proptest::prelude::*;

/// Uniform draw in `[lo, hi)` from the shim RNG.
fn f(rng: &mut TestRng, lo: f64, hi: f64) -> f64 {
    lo + rng.next_f64() * (hi - lo)
}

/// A random valid generic deck on `[0,1]²`, all-reflective walls, no
/// piston: at most one bounded feature region (which can never cover
/// the far corner of the domain) over a whole-domain ambient region.
fn random_deck(rng: &mut TestRng) -> InputDeck {
    let nx = 4 + (rng.next_u64() % 6) as usize;
    let ny = 4 + (rng.next_u64() % 6) as usize;

    let gas = NamedMaterial {
        name: "gas".into(),
        eos: EosSpec::IdealGas {
            gamma: f(rng, 1.2, 1.9),
        },
    };
    let water = NamedMaterial {
        name: "water".into(),
        eos: EosSpec::Tait {
            p0: f(rng, 20.0, 120.0),
            rho0: 1.0,
            gamma: 7.0,
        },
    };
    let two_materials = rng.next_u64().is_multiple_of(2);
    let materials = if two_materials {
        vec![gas, water]
    } else {
        vec![gas]
    };

    let region = |rng: &mut TestRng, name: &str, shape: Shape| {
        let mat = &materials[(rng.next_u64() % materials.len() as u64) as usize];
        let energy =
            if matches!(mat.eos, EosSpec::IdealGas { .. }) && rng.next_u64().is_multiple_of(2) {
                EnergyInit::Pressure(f(rng, 0.1, 2.0))
            } else {
                EnergyInit::Ein(f(rng, 0.1, 2.0))
            };
        let velocity = if rng.next_u64().is_multiple_of(3) {
            VelocityInit::Radial {
                speed: f(rng, -0.4, 0.4),
            }
        } else {
            VelocityInit::Constant(Vec2::new(f(rng, -0.3, 0.3), f(rng, -0.3, 0.3)))
        };
        RegionSpec {
            name: name.into(),
            shape,
            material: mat.name.clone(),
            rho: f(rng, 0.5, 2.0),
            energy,
            velocity,
        }
    };

    let mut regions = Vec::new();
    match rng.next_u64() % 4 {
        0 => {} // ambient only
        1 => {
            // A circle with r < 0.45 cannot reach both opposite corner
            // centroids, so the ambient region always keeps elements.
            let shape = Shape::Circle {
                cx: f(rng, 0.0, 1.0),
                cy: f(rng, 0.0, 1.0),
                r: f(rng, 0.15, 0.45),
            };
            regions.push(region(rng, "feature", shape));
        }
        2 => {
            // A rect inside [0, 0.9]² leaves the (1,1) corner uncovered.
            let x0 = f(rng, 0.0, 0.5);
            let y0 = f(rng, 0.0, 0.5);
            let shape = Shape::Rect {
                x0,
                y0,
                x1: (x0 + f(rng, 0.1, 0.5)).min(0.9),
                y1: (y0 + f(rng, 0.1, 0.5)).min(0.9),
            };
            regions.push(region(rng, "feature", shape));
        }
        _ => {
            // n·p ≤ offset with n positive and offset < 0.8 (a+b):
            // always contains the (0,0) corner centroid, never the
            // (1,1) corner.
            let a = f(rng, 0.2, 1.0);
            let b = f(rng, 0.2, 1.0);
            let shape = Shape::HalfPlane {
                normal_x: a,
                normal_y: b,
                offset: f(rng, 0.3, 0.8 * (a + b)),
            };
            regions.push(region(rng, "feature", shape));
        }
    }
    let ambient = Shape::Rect {
        x0: 0.0,
        y0: 0.0,
        x1: 1.0,
        y1: 1.0,
    };
    regions.push(region(rng, "ambient", ambient));

    let spec = GenericSpec {
        name: "fuzz".into(),
        mesh: MeshSpec {
            nx,
            ny,
            origin: Vec2::ZERO,
            extent: Vec2::new(1.0, 1.0),
            skew: None,
        },
        materials,
        regions,
        boundary: BoundarySpec::default(),
    };
    let mut input = InputDeck::new(ProblemSpec::Generic(Box::new(spec)));
    input.final_time = Some(0.01);
    input.max_steps = 6;
    input
}

/// Run `input` to its (short) step budget under `executor`.
fn run(input: &InputDeck, executor: ExecutorKind) -> (Simulation, bookleaf::RunReport) {
    let mut sim = Simulation::builder()
        .deck_input(input.clone())
        .executor(executor)
        .build()
        .expect("fuzzed deck must build");
    let report = sim.run().expect("fuzzed deck must run");
    (sim, report)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The any-deck invariants, 128 random decks.
    #[test]
    fn random_generic_decks_hold_any_deck_invariants(seed in 0u64..1_000_000_000) {
        let mut rng = TestRng::from_name(&format!("deck-fuzz-{seed}"));
        let input = random_deck(&mut rng);

        // Round trip: canonical text reproduces the deck exactly, and
        // re-printing reproduces the bytes.
        let text = input.to_string();
        let reparsed: InputDeck = match text.parse() {
            Ok(deck) => deck,
            Err(e) => return Err(format!("re-parse failed: {e}\n{text}")),
        };
        prop_assert_eq!(&reparsed, &input);
        prop_assert_eq!(reparsed.to_string(), text);

        // Build + run: time advances, so every accepted dt was > 0.
        let (serial, report) = run(&input, ExecutorKind::Serial);
        prop_assert!(report.steps > 0, "no steps taken");
        prop_assert!(
            report.time > 0.0 && report.time.is_finite(),
            "time did not advance: {}",
            report.time
        );

        // Conservation: reflective walls, no piston — energy drift
        // stays at roundoff level.
        prop_assert!(
            report.energy_drift() < 1e-9,
            "energy drift {} over {} steps",
            report.energy_drift(),
            report.steps
        );

        // Executor equivalence: hybrid (2 ranks × 2 threads) matches
        // serial at 1e-12.
        let (hybrid, _) = run(
            &input,
            ExecutorKind::Hybrid { ranks: 2, threads_per_rank: 2 },
        );
        let (a, b) = (serial.state(), hybrid.state());
        for e in 0..a.rho.len() {
            prop_assert!(
                (a.rho[e] - b.rho[e]).abs() <= 1e-12,
                "rho[{e}]: serial {} vs hybrid {}",
                a.rho[e],
                b.rho[e]
            );
            prop_assert!(
                (a.ein[e] - b.ein[e]).abs() <= 1e-12,
                "ein[{e}]: serial {} vs hybrid {}",
                a.ein[e],
                b.ein[e]
            );
        }
        for n in 0..a.u.len() {
            prop_assert!(
                (a.u[n] - b.u[n]).norm() <= 1e-12,
                "u[{n}]: serial {:?} vs hybrid {:?}",
                a.u[n],
                b.u[n]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Decks symmetric about the x = y diagonal produce solutions that
    /// stay symmetric under transposition: `rho(i,j) = rho(j,i)` and
    /// `u(i,j) = swap(u(j,i))`.
    #[test]
    fn symmetric_decks_stay_symmetric(seed in 0u64..1_000_000_000) {
        let mut rng = TestRng::from_name(&format!("deck-sym-{seed}"));
        let n = 4 + (rng.next_u64() % 5) as usize;
        let gamma = f(&mut rng, 1.3, 1.8);
        // An origin-centred circular feature (radially symmetric, so
        // diagonal-symmetric) over a uniform ambient — the Noh/Sedov
        // family, randomized.
        let feature = RegionSpec {
            name: "core".into(),
            shape: Shape::Circle {
                cx: 0.0,
                cy: 0.0,
                r: f(&mut rng, 0.2, 0.6),
            },
            material: "gas".into(),
            rho: f(&mut rng, 0.5, 2.0),
            energy: EnergyInit::Ein(f(&mut rng, 0.5, 2.0)),
            velocity: VelocityInit::Radial {
                speed: f(&mut rng, -0.5, 0.5),
            },
        };
        let ambient = RegionSpec {
            name: "ambient".into(),
            shape: Shape::Rect { x0: 0.0, y0: 0.0, x1: 1.0, y1: 1.0 },
            material: "gas".into(),
            rho: 1.0,
            energy: EnergyInit::Ein(f(&mut rng, 0.05, 0.5)),
            velocity: VelocityInit::Constant(Vec2::ZERO),
        };
        let spec = GenericSpec {
            name: "fuzz-sym".into(),
            mesh: MeshSpec {
                nx: n,
                ny: n,
                origin: Vec2::ZERO,
                extent: Vec2::new(1.0, 1.0),
                skew: None,
            },
            materials: vec![NamedMaterial {
                name: "gas".into(),
                eos: EosSpec::IdealGas { gamma },
            }],
            regions: vec![feature, ambient],
            boundary: BoundarySpec::default(),
        };
        let mut input = InputDeck::new(ProblemSpec::Generic(Box::new(spec)));
        input.final_time = Some(0.01);
        input.max_steps = 8;

        let (sim, _) = run(&input, ExecutorKind::Serial);
        let state = sim.state();
        const TOL: f64 = 1e-9;
        for j in 0..n {
            for i in 0..n {
                let (e, et) = (j * n + i, i * n + j);
                prop_assert!(
                    (state.rho[e] - state.rho[et]).abs() <= TOL,
                    "rho({i},{j}) = {} vs rho({j},{i}) = {}",
                    state.rho[e],
                    state.rho[et]
                );
                prop_assert!(
                    (state.ein[e] - state.ein[et]).abs() <= TOL,
                    "ein({i},{j}) = {} vs ein({j},{i}) = {}",
                    state.ein[e],
                    state.ein[et]
                );
            }
        }
        for j in 0..=n {
            for i in 0..=n {
                let (v, vt) = (j * (n + 1) + i, i * (n + 1) + j);
                let (u, ut) = (state.u[v], state.u[vt]);
                prop_assert!(
                    (u.x - ut.y).abs() <= TOL && (u.y - ut.x).abs() <= TOL,
                    "u({i},{j}) = {u:?} vs swapped u({j},{i}) = {ut:?}"
                );
            }
        }
    }
}
