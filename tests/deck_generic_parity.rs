//! The five standard problems re-expressed in the generic deck
//! vocabulary must reproduce the named constructors **bitwise** — the
//! ISSUE-10 acceptance bar. Each named `ProblemSpec` maps to its
//! `GenericSpec` via `generic_equivalent`, takes a round trip through
//! the canonical text form, builds, and must match the named
//! constructor's deck field for field (`to_bits` on every float), and a
//! short serial run of both must land on bit-identical state.

use bookleaf::core::scenario::generic_equivalent;
use bookleaf::{Deck, InputDeck, ProblemSpec, Simulation};

/// The five standard problems at modest resolutions (kept small so the
/// run-parity legs stay quick).
fn named_specs() -> [ProblemSpec; 5] {
    [
        ProblemSpec::Sod { nx: 16, ny: 4 },
        ProblemSpec::Noh { n: 8 },
        ProblemSpec::Sedov { n: 8 },
        ProblemSpec::Saltzmann { nx: 16, ny: 4 },
        ProblemSpec::Underwater { n: 10 },
    ]
}

/// The named constructor's deck for `spec`.
fn named_deck(spec: &ProblemSpec) -> Deck {
    InputDeck::new(spec.clone()).build_deck().unwrap()
}

/// The deck built from `spec`'s generic re-expression, routed through
/// the *text* form (write → parse → build) so the whole pipeline is on
/// the hook, with the named problem's standard end time stamped on.
fn generic_deck(spec: &ProblemSpec) -> Deck {
    let generic = generic_equivalent(spec).expect("named specs have generic equivalents");
    let mut input = InputDeck::new(ProblemSpec::Generic(Box::new(generic)));
    input.final_time = Some(spec.recommended_final_time());
    let text = input.to_string();
    let reparsed: InputDeck = text.parse().unwrap_or_else(|e| {
        panic!(
            "{}: generic re-expression failed to re-parse: {e}\n{text}",
            spec.name()
        )
    });
    assert_eq!(
        reparsed,
        input,
        "{}: text round trip moved the spec",
        spec.name()
    );
    reparsed.build_deck().unwrap()
}

/// Bitwise equality of every deck field the physics reads.
fn assert_decks_bitwise_equal(name: &str, a: &Deck, b: &Deck) {
    assert_eq!(a.name, b.name, "{name}: name");
    assert_eq!(a.mesh.region, b.mesh.region, "{name}: region ids");
    assert_eq!(a.mesh.node_bc, b.mesh.node_bc, "{name}: node BCs");
    assert_eq!(a.materials, b.materials, "{name}: material table");
    assert_eq!(a.piston, b.piston, "{name}: piston");
    assert_eq!(
        a.recommended_final_time.to_bits(),
        b.recommended_final_time.to_bits(),
        "{name}: final time"
    );
    assert_eq!(a.mesh.nodes.len(), b.mesh.nodes.len(), "{name}: node count");
    for (n, (pa, pb)) in a.mesh.nodes.iter().zip(&b.mesh.nodes).enumerate() {
        assert_eq!(pa.x.to_bits(), pb.x.to_bits(), "{name}: node {n} x");
        assert_eq!(pa.y.to_bits(), pb.y.to_bits(), "{name}: node {n} y");
    }
    assert_eq!(a.rho.len(), b.rho.len(), "{name}: element count");
    for e in 0..a.rho.len() {
        assert_eq!(a.rho[e].to_bits(), b.rho[e].to_bits(), "{name}: rho {e}");
        assert_eq!(a.ein[e].to_bits(), b.ein[e].to_bits(), "{name}: ein {e}");
    }
    for (n, (ua, ub)) in a.u.iter().zip(&b.u).enumerate() {
        assert_eq!(ua.x.to_bits(), ub.x.to_bits(), "{name}: u {n} x");
        assert_eq!(ua.y.to_bits(), ub.y.to_bits(), "{name}: u {n} y");
    }
}

#[test]
fn generic_re_expressions_match_named_constructors_bitwise() {
    for spec in named_specs() {
        let named = named_deck(&spec);
        let generic = generic_deck(&spec);
        assert_decks_bitwise_equal(spec.name(), &named, &generic);
    }
}

#[test]
fn generic_re_expressions_run_bitwise_identical_to_named() {
    for spec in named_specs() {
        let steps = 10;
        let run = |deck: Deck| {
            let mut sim = Simulation::builder()
                .deck(deck)
                .max_steps(steps)
                .build()
                .unwrap_or_else(|e| panic!("{}: build failed: {e}", spec.name()));
            sim.run()
                .unwrap_or_else(|e| panic!("{}: run failed: {e}", spec.name()));
            sim
        };
        let named = run(named_deck(&spec));
        let generic = run(generic_deck(&spec));
        let (a, b) = (named.state(), generic.state());
        for e in 0..a.rho.len() {
            assert_eq!(
                a.rho[e].to_bits(),
                b.rho[e].to_bits(),
                "{}: rho {e} diverged",
                spec.name()
            );
            assert_eq!(
                a.ein[e].to_bits(),
                b.ein[e].to_bits(),
                "{}: ein {e} diverged",
                spec.name()
            );
        }
        for n in 0..a.u.len() {
            assert_eq!(
                a.u[n].x.to_bits(),
                b.u[n].x.to_bits(),
                "{}: u.x {n} diverged",
                spec.name()
            );
            assert_eq!(
                a.u[n].y.to_bits(),
                b.u[n].y.to_bits(),
                "{}: u.y {n} diverged",
                spec.name()
            );
        }
    }
}
