//! Input-deck text round trip: `decks::from_str(decks::to_string(d))`
//! must reproduce every field of `d` — for the five standard problems,
//! for randomized option combinations (proptest), and the failure mode
//! must be a typed, line-anchored error.

use bookleaf::ale::{AleMode, AleOptions};
use bookleaf::core::decks::{self, InputDeck, ProblemSpec};
use bookleaf::core::ExecutorKind;
use bookleaf::hydro::getdt::DtControls;
use bookleaf::util::DeckError;
use proptest::prelude::*;

/// The five standard problems as input-deck specs.
fn standard_specs() -> [ProblemSpec; 5] {
    [
        ProblemSpec::Sod { nx: 40, ny: 4 },
        ProblemSpec::Noh { n: 20 },
        ProblemSpec::Sedov { n: 16 },
        ProblemSpec::Saltzmann { nx: 24, ny: 4 },
        ProblemSpec::Underwater { n: 12 },
    ]
}

#[test]
fn five_standard_decks_round_trip_every_field() {
    for spec in standard_specs() {
        let deck = InputDeck::new(spec.clone());
        let text = decks::to_string(&deck);
        let back = decks::from_str(&text)
            .unwrap_or_else(|e| panic!("{}: re-parse failed: {e}", spec.name()));
        assert_eq!(back, deck, "{} spec did not round trip", spec.name());
        // And the *constructed* decks agree field for field too.
        assert_eq!(
            back.build_deck().unwrap(),
            deck.build_deck().unwrap(),
            "{} built deck did not round trip",
            spec.name()
        );
    }
}

#[test]
fn standard_decks_match_their_programmatic_constructors() {
    let built = |spec: ProblemSpec| InputDeck::new(spec).build_deck().unwrap();
    assert_eq!(built(ProblemSpec::Sod { nx: 40, ny: 4 }), decks::sod(40, 4));
    assert_eq!(built(ProblemSpec::Noh { n: 20 }), decks::noh(20));
    assert_eq!(built(ProblemSpec::Sedov { n: 16 }), decks::sedov(16));
    assert_eq!(
        built(ProblemSpec::Saltzmann { nx: 24, ny: 4 }),
        decks::saltzmann(24, 4)
    );
    assert_eq!(
        built(ProblemSpec::Underwater { n: 12 }),
        decks::underwater(12)
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Randomized option combinations survive the text round trip
    /// exactly — floats included (shortest round-trip formatting).
    #[test]
    fn randomized_decks_round_trip(
        problem_pick in 0usize..5,
        nx in 1usize..300,
        ny in 1usize..60,
        has_final_time in 0usize..2,
        final_time in 0.001f64..2.0,
        max_steps in 1usize..200_000,
        overlap_pick in 0usize..2,
        cfl_sf in 0.05f64..0.9,
        div_sf in 0.05f64..0.9,
        growth in 1.0f64..1.2,
        dt_initial in 1e-8f64..1e-3,
        dt_scale in 1.0f64..1e6,
        ale_pick in 0usize..3,
        alpha in 0.05f64..1.0,
        frequency in 1usize..20,
        exec_pick in 0usize..3,
        ranks in 1usize..9,
        threads in 1usize..6,
    ) {
        let problem = match problem_pick {
            0 => ProblemSpec::Sod { nx, ny },
            1 => ProblemSpec::Noh { n: nx },
            2 => ProblemSpec::Sedov { n: ny },
            3 => ProblemSpec::Saltzmann { nx, ny },
            _ => ProblemSpec::Underwater { n: nx },
        };
        let deck = InputDeck {
            problem,
            final_time: (has_final_time == 1).then_some(final_time),
            max_steps,
            overlap: overlap_pick == 1,
            dt: DtControls {
                cfl_sf,
                div_sf,
                growth,
                dt_initial,
                dt_max: dt_initial * dt_scale,
                dt_min: dt_initial / dt_scale,
            },
            ale: match ale_pick {
                0 => None,
                1 => Some(AleOptions { mode: AleMode::Eulerian, frequency }),
                _ => Some(AleOptions { mode: AleMode::Smooth { alpha }, frequency }),
            },
            executor: match exec_pick {
                0 => ExecutorKind::Serial,
                1 => ExecutorKind::FlatMpi { ranks },
                _ => ExecutorKind::Hybrid { ranks, threads_per_rank: threads },
            },
        };
        prop_assert!(deck.validate().is_ok(), "random deck should be valid");
        let text = decks::to_string(&deck);
        let back = decks::from_str(&text);
        prop_assert!(back.is_ok(), "re-parse failed: {:?}\n{text}", back.err());
        prop_assert_eq!(back.unwrap(), deck);
    }
}

#[test]
fn malformed_decks_fail_with_line_anchored_errors() {
    // (text, expected 1-based line, fragment the message must carry)
    let cases: &[(&str, usize, &str)] = &[
        ("problem = sod\nnx = 40\nny = twelve\n", 3, "ny"),
        ("problem = sod\nnx = 40\nny 4\n", 3, "key = value"),
        ("problem = waterfall\n", 1, "waterfall"),
        ("problem = noh\nn = 8\n[advanced]\nfoo = 1\n", 3, "advanced"),
        ("problem = noh\nn = 8\nbogus = 1\n", 3, "bogus"),
        (
            "problem = noh\nn = 8\n[control]\noverlap = maybe\n",
            4,
            "overlap",
        ),
        ("problem = noh\nn = 8\n[dt]\ndt_min = tiny\n", 4, "dt_min"),
        ("problem = noh\nn = 8\n[ale]\nmode = wavy\n", 4, "wavy"),
        (
            "problem = noh\nn = 8\n[executor]\nmodel = hybrid\nranks = 2\n",
            4,
            "threads_per_rank",
        ),
        ("problem = noh\nn = 8\nnx = 8\n", 3, "does not apply"),
        ("problem = noh\nn = 8\nn = 9\n", 3, "duplicate"),
        (
            "problem = noh\nn = 8\n[control]\nfinal_time = inf\n",
            4,
            "finite",
        ),
        ("problem = noh\nn = 8\n[dt]\ncfl_sf = NaN\n", 4, "finite"),
        (
            "problem = noh\nn = 8\n[executor]\nthreads_per_rank = 4\n",
            4,
            "requires an executor `model`",
        ),
    ];
    for (text, line, fragment) in cases {
        match decks::from_str(text) {
            Err(DeckError::Text { line: got, message }) => {
                assert_eq!(got, *line, "wrong line for {text:?}: {message}");
                assert!(
                    message.contains(fragment),
                    "message for {text:?} lacks `{fragment}`: {message}"
                );
            }
            other => panic!("{text:?}: expected a line-anchored error, got {other:?}"),
        }
    }
}

#[test]
fn semantic_errors_are_typed_config_errors() {
    for text in [
        "problem = noh\nn = 0\n",
        "problem = noh\nn = 8\n[control]\nmax_steps = 0\n",
        "problem = noh\nn = 8\n[control]\nfinal_time = -1.0\n",
        "problem = noh\nn = 8\n[executor]\nmodel = flat_mpi\nranks = 0\n",
        "problem = noh\nn = 8\n[ale]\nmode = smooth\nalpha = 7.0\n",
    ] {
        match decks::from_str(text) {
            Err(DeckError::Config { .. }) => {}
            other => panic!("{text:?}: expected a Config error, got {other:?}"),
        }
    }
}
