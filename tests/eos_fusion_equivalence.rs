//! Bitwise equivalence of the fused EOS sweep against the unfused
//! `getgeom → getrho → getein → getpc` chain.
//!
//! The fused sweep's contract (see `bookleaf::hydro::eos_fused`) is that
//! it produces *bitwise identical* state to running the four kernels in
//! sequence — fusion may only change how the arrays are streamed, never
//! the arithmetic. This suite pins that contract:
//!
//! * the full chain, on every standard deck, serial and rayon;
//! * the corrector form (`ein_from`) against restore-then-advance;
//! * every one of the 16 stage-subset masks against the matching
//!   kernel subsequence;
//! * a property test over randomised valid states;
//! * the error path on a tangled mesh (same error value, both routes).

use bookleaf::core::decks::{self, Deck};
use bookleaf::eos::MaterialTable;
use bookleaf::hydro::getein::{getein, WorkVelocity};
use bookleaf::hydro::getforce::{getforce, HourglassControl};
use bookleaf::hydro::getgeom::getgeom;
use bookleaf::hydro::getpc::getpc;
use bookleaf::hydro::getq::{getq, QCoeffs};
use bookleaf::hydro::getrho::getrho;
use bookleaf::hydro::{eos_fused, EosStages, FusedEos, HydroState, LocalRange, Threading};
use bookleaf::mesh::{generate_rect, Mesh, RectSpec};
use bookleaf::util::Vec2;
use proptest::prelude::*;

const DT: f64 = 1e-6;

/// A mid-flow state on `deck`: geometry, density, pressure, viscosity
/// and corner forces populated, `ubar` distinct from `u`, so every
/// chain stage sees realistic, non-trivial inputs.
fn prepared(deck: &Deck) -> (Mesh, MaterialTable, HydroState, LocalRange) {
    let mesh = deck.mesh.clone();
    let mut st = HydroState::new(
        &mesh,
        &deck.materials,
        |e| deck.rho[e],
        |e| deck.ein[e],
        |nd| deck.u[nd],
    )
    .expect("state");
    let range = LocalRange::whole(&mesh);
    let th = Threading::Serial;
    getgeom(&mesh, &mut st, range, th).expect("geom");
    getrho(&mut st, range, th).expect("rho");
    getpc(&mesh, &deck.materials, &mut st, range, th);
    getq(&mesh, &mut st, range, QCoeffs::default(), th);
    getforce(&mesh, &mut st, range, HourglassControl::default(), DT, th);
    for i in 0..st.n_nodes() {
        st.ubar[i] = Vec2::new(0.5 * st.u[i].x, 0.5 * st.u[i].y);
    }
    (mesh, deck.materials.clone(), st, range)
}

/// The unfused kernel subsequence selected by `stages`.
fn run_chain(
    mesh: &Mesh,
    materials: &MaterialTable,
    st: &mut HydroState,
    range: LocalRange,
    stages: EosStages,
    which: WorkVelocity,
    th: Threading,
) {
    if stages.geom {
        getgeom(mesh, st, range, th).expect("geom");
    }
    if stages.rho {
        getrho(st, range, th).expect("rho");
    }
    if stages.ein {
        getein(mesh, st, range, DT, which, th);
    }
    if stages.pc {
        getpc(mesh, materials, st, range, th);
    }
}

#[allow(clippy::too_many_arguments)] // mirrors the full eos_fused surface
fn run_fused(
    mesh: &Mesh,
    materials: &MaterialTable,
    st: &mut HydroState,
    range: LocalRange,
    stages: EosStages,
    which: WorkVelocity,
    ein_from: Option<&[f64]>,
    th: Threading,
) {
    eos_fused(
        mesh,
        materials,
        st,
        range,
        FusedEos {
            dt: DT,
            which,
            ein_from,
            stages,
        },
        th,
    )
    .expect("fused");
}

/// Every output array of the chain, compared bit for bit.
fn assert_bits_eq(a: &HydroState, b: &HydroState, what: &str) {
    let scalars: [(&str, &[f64], &[f64]); 6] = [
        ("volume", &a.volume, &b.volume),
        ("length", &a.length, &b.length),
        ("rho", &a.rho, &b.rho),
        ("ein", &a.ein, &b.ein),
        ("pressure", &a.pressure, &b.pressure),
        ("cs2", &a.cs2, &b.cs2),
    ];
    for (name, xs, ys) in scalars {
        assert_eq!(xs.len(), ys.len(), "{what}: {name} length");
        for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: {name}[{i}] {x:e} vs {y:e}"
            );
        }
    }
    for (i, (x, y)) in a.cnvol.iter().zip(&b.cnvol).enumerate() {
        for c in 0..4 {
            assert_eq!(
                x[c].to_bits(),
                y[c].to_bits(),
                "{what}: cnvol[{i}][{c}] {:e} vs {:e}",
                x[c],
                y[c]
            );
        }
    }
}

fn standard_decks() -> Vec<(&'static str, Deck)> {
    vec![
        ("sod", decks::sod(24, 4)),
        ("noh", decks::noh(12)),
        ("sedov", decks::sedov(12)),
        ("saltzmann", decks::saltzmann(20, 5)),
        ("underwater", decks::underwater(12)),
    ]
}

#[test]
fn full_chain_matches_on_every_standard_deck() {
    for (name, deck) in standard_decks() {
        for th in [Threading::Serial, Threading::Rayon] {
            let (mesh, mat, st0, range) = prepared(&deck);
            for which in [WorkVelocity::Current, WorkVelocity::TimeCentred] {
                let mut a = st0.clone();
                let mut b = st0.clone();
                run_fused(
                    &mesh,
                    &mat,
                    &mut a,
                    range,
                    EosStages::all(),
                    which,
                    None,
                    th,
                );
                run_chain(&mesh, &mat, &mut b, range, EosStages::all(), which, th);
                assert_bits_eq(&a, &b, &format!("{name} {th:?} {which:?}"));
            }
        }
    }
}

#[test]
fn corrector_ein_from_matches_restore_then_advance() {
    for (name, deck) in standard_decks() {
        let (mesh, mat, st0, range) = prepared(&deck);
        let n = range.n_owned_el;
        let ein0: Vec<f64> = st0.ein[..n].to_vec();
        let th = Threading::Serial;

        // Perturb the live energies so the restore is observable.
        let mut a = st0.clone();
        let mut b = st0.clone();
        for e in 0..n {
            a.ein[e] *= 1.25;
            b.ein[e] *= 1.25;
        }

        // Fused corrector: integrate from the saved energies directly.
        run_fused(
            &mesh,
            &mat,
            &mut a,
            range,
            EosStages::all(),
            WorkVelocity::TimeCentred,
            Some(&ein0),
            th,
        );
        // Unfused corrector: restore, then advance in place.
        b.ein[..n].copy_from_slice(&ein0);
        run_chain(
            &mesh,
            &mat,
            &mut b,
            range,
            EosStages::all(),
            WorkVelocity::TimeCentred,
            th,
        );
        assert_bits_eq(&a, &b, name);
    }
}

#[test]
fn every_stage_subset_matches_its_kernel_subsequence() {
    // All 16 masks, including the empty one (a no-op on both routes).
    let (mesh, mat, st0, range) = prepared(&decks::noh(12));
    for bits in 0u8..16 {
        let stages = EosStages {
            geom: bits & 1 != 0,
            rho: bits & 2 != 0,
            ein: bits & 4 != 0,
            pc: bits & 8 != 0,
        };
        for th in [Threading::Serial, Threading::Rayon] {
            let mut a = st0.clone();
            let mut b = st0.clone();
            run_fused(
                &mesh,
                &mat,
                &mut a,
                range,
                stages,
                WorkVelocity::Current,
                None,
                th,
            );
            run_chain(
                &mesh,
                &mat,
                &mut b,
                range,
                stages,
                WorkVelocity::Current,
                th,
            );
            assert_bits_eq(&a, &b, &format!("mask {bits:04b} {th:?}"));
        }
    }
}

#[test]
fn tangled_mesh_reports_the_same_error_on_both_routes() {
    let (mut mesh, mat, st0, range) = prepared(&decks::noh(8));
    // Collapse element 0: drag its third corner across the quad so the
    // signed area goes negative.
    let nd = mesh.elnd[0][2] as usize;
    mesh.nodes[nd] = mesh.nodes[mesh.elnd[0][0] as usize] - Vec2::new(0.05, 0.05);
    let th = Threading::Serial;

    let mut a = st0.clone();
    let fused_err = eos_fused(
        &mesh,
        &mat,
        &mut a,
        range,
        FusedEos {
            dt: DT,
            which: WorkVelocity::Current,
            ein_from: None,
            stages: EosStages::all(),
        },
        th,
    )
    .expect_err("tangled mesh must fail");
    let mut b = st0.clone();
    let chain_err = getgeom(&mesh, &mut b, range, th).expect_err("tangled mesh must fail");
    assert_eq!(format!("{fused_err:?}"), format!("{chain_err:?}"));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Random valid states — random density/energy fields, a random
    /// smooth velocity field, random dt-independent force state — fuse
    /// to the same bits as the chain, for every threading.
    #[test]
    fn random_states_fuse_bitwise(
        seed_rho in 0.1f64..5.0,
        seed_ein in 0.1f64..5.0,
        amp in 0.0f64..0.8,
        stride in 1usize..7,
        gamma in 1.1f64..2.0,
    ) {
        let mesh = generate_rect(&RectSpec::unit_square(8), |_| 0).unwrap();
        let mat = MaterialTable::single(bookleaf::eos::EosSpec::ideal_gas(gamma));
        let mut st = HydroState::new(
            &mesh,
            &mat,
            |e| seed_rho * (1.0 + 0.3 * ((e * stride % 7) as f64) / 7.0),
            |e| seed_ein * (1.0 + 0.5 * ((e * 3 % 5) as f64) / 5.0),
            |nd| Vec2::new(
                amp * ((nd * stride % 9) as f64 / 9.0 - 0.5),
                amp * ((nd * 5 % 11) as f64 / 11.0 - 0.5),
            ),
        ).unwrap();
        let range = LocalRange::whole(&mesh);
        let th = Threading::Serial;
        getgeom(&mesh, &mut st, range, th).unwrap();
        getrho(&mut st, range, th).unwrap();
        getpc(&mesh, &mat, &mut st, range, th);
        getq(&mesh, &mut st, range, QCoeffs::default(), th);
        getforce(&mesh, &mut st, range, HourglassControl::default(), DT, th);
        for i in 0..st.n_nodes() {
            st.ubar[i] = Vec2::new(0.5 * st.u[i].x, 0.5 * st.u[i].y);
        }
        for th in [Threading::Serial, Threading::Rayon] {
            let mut a = st.clone();
            let mut b = st.clone();
            run_fused(&mesh, &mat, &mut a, range, EosStages::all(),
                      WorkVelocity::Current, None, th);
            run_chain(&mesh, &mat, &mut b, range, EosStages::all(),
                      WorkVelocity::Current, th);
            assert_bits_eq(&a, &b, &format!("random {th:?}"));
        }
    }
}
