//! Failure injection: every fatal condition must surface as a typed
//! error, never as UB, a wrong answer, or a hang.

use bookleaf::core::{decks, ExecutorKind, RunConfig, Simulation};
use bookleaf::eos::{EosSpec, MaterialTable};
use bookleaf::hydro::getdt::DtControls;
use bookleaf::hydro::{HydroState, LocalRange};
use bookleaf::mesh::{generate_rect, Mesh, NodeBc, RectSpec, SubMeshPlan};
use bookleaf::typhon::Typhon;
use bookleaf::util::{BookLeafError, DeckError, Vec2};

#[test]
fn tangled_mesh_reports_negative_volume() {
    let mut mesh = generate_rect(&RectSpec::unit_square(3), |_| 0).unwrap();
    let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
    let mut st = HydroState::new(&mesh, &mat, |_| 1.0, |_| 1.0, |_| Vec2::ZERO).unwrap();
    let range = LocalRange::whole(&mesh);
    // Fling an interior node across the domain.
    mesh.nodes[5] = Vec2::new(9.0, 9.0);
    let err = bookleaf::hydro::getgeom::getgeom(
        &mesh,
        &mut st,
        range,
        bookleaf::hydro::Threading::Serial,
    )
    .unwrap_err();
    assert!(matches!(err, BookLeafError::NegativeVolume { .. }), "{err}");
}

#[test]
fn dt_collapse_is_a_typed_error() {
    // dt_min above any feasible CFL step: the first computed dt (after
    // the initial-dt step) must collapse.
    let deck = decks::sod(16, 2);
    let config = RunConfig {
        final_time: 0.2,
        dt: DtControls {
            dt_min: 0.1,
            ..DtControls::default()
        },
        ..RunConfig::default()
    };
    let mut sim = Simulation::builder()
        .deck(deck)
        .config(config)
        .build()
        .unwrap();
    let err = sim.run().unwrap_err();
    assert!(
        matches!(err, BookLeafError::TimestepCollapse { .. }),
        "{err}"
    );
}

#[test]
fn corrupt_deck_is_rejected_before_running() {
    let mut deck = decks::noh(6);
    deck.ein.truncate(3);
    // Shape corruption surfaces as the typed DeckError::Shape.
    let err = Simulation::builder().deck(deck).build().unwrap_err();
    assert!(
        matches!(err, BookLeafError::Deck(DeckError::Shape { .. })),
        "{err}"
    );
}

#[test]
fn deck_with_unknown_material_is_rejected() {
    let mut deck = decks::sod(8, 2);
    deck.materials = MaterialTable::single(EosSpec::ideal_gas(1.4)); // loses region 1
    let err = Simulation::builder().deck(deck).build().unwrap_err();
    assert!(
        matches!(err, BookLeafError::Deck(DeckError::Invalid { .. })),
        "{err}"
    );
}

#[test]
fn malformed_text_deck_is_line_anchored() {
    // Line 3 holds the typo; the typed error must carry that line.
    let err = Simulation::builder()
        .deck_str("problem = noh\nn = 8\nfrequenzy = 2\n")
        .build()
        .unwrap_err();
    match err {
        BookLeafError::Deck(DeckError::Text { line, ref message }) => {
            assert_eq!(line, 3);
            assert!(message.contains("frequenzy"), "{message}");
        }
        other => panic!("expected a line-anchored deck error, got {other}"),
    }
}

#[test]
fn negative_initial_density_is_rejected() {
    let mesh = generate_rect(&RectSpec::unit_square(2), |_| 0).unwrap();
    let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
    let err = HydroState::new(
        &mesh,
        &mat,
        |e| if e == 1 { -2.0 } else { 1.0 },
        |_| 1.0,
        |_| Vec2::ZERO,
    )
    .unwrap_err();
    assert!(
        matches!(err, BookLeafError::InvalidState { element: 1, .. }),
        "{err}"
    );
}

#[test]
fn rank_panic_surfaces_with_rank_id() {
    let err = Typhon::run(3, |ctx| {
        if ctx.rank() == 2 {
            panic!("injected rank failure");
        }
        ctx.rank()
    })
    .unwrap_err();
    match err {
        BookLeafError::RankPanic { rank, message } => {
            assert_eq!(rank, 2);
            assert!(message.contains("injected rank failure"));
        }
        other => panic!("unexpected error: {other}"),
    }
}

#[test]
fn infeasible_partitions_are_rejected() {
    let mesh = generate_rect(&RectSpec::unit_square(2), |_| 0).unwrap();
    // More ranks than elements.
    let err =
        bookleaf::partition::partition(&mesh, 9, bookleaf::partition::Strategy::Rcb).unwrap_err();
    assert!(matches!(err, BookLeafError::Partition(_)), "{err}");
    // Poisoned owner array: element assigned to a missing rank.
    let err = SubMeshPlan::build(&mesh, &[0, 0, 0, 7], 2).unwrap_err();
    assert!(matches!(err, BookLeafError::Partition(_)), "{err}");
}

#[test]
fn bowtie_input_mesh_is_rejected() {
    // A self-intersecting quad passes shoelace positivity checks only if
    // mis-ordered; Mesh::from_raw + HydroState must reject it one way or
    // another.
    let nodes = vec![
        Vec2::new(0.0, 0.0),
        Vec2::new(1.0, 0.0),
        Vec2::new(0.0, 1.0),
        Vec2::new(1.0, 1.0),
    ];
    // Bowtie ordering: (0,0) -> (1,0) -> (0,1) -> (1,1).
    let elnd = vec![[0u32, 1, 2, 3]];
    let mesh = Mesh::from_raw(nodes, elnd, vec![NodeBc::FREE; 4], vec![0]);
    let failed = match mesh {
        Err(_) => true,
        Ok(m) => {
            let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
            HydroState::new(&m, &mat, |_| 1.0, |_| 1.0, |_| Vec2::ZERO).is_err()
        }
    };
    assert!(failed, "bowtie element slipped through setup");
}

#[test]
fn distributed_run_propagates_rank_errors() {
    // A deck that collapses dt must fail identically under the
    // distributed executor (no hang, no partial result).
    let deck = decks::sod(16, 2);
    let config = RunConfig {
        final_time: 0.2,
        dt: DtControls {
            dt_min: 0.1,
            ..DtControls::default()
        },
        executor: ExecutorKind::FlatMpi { ranks: 2 },
        ..RunConfig::default()
    };
    let err = Simulation::builder()
        .deck(deck)
        .config(config)
        .build()
        .unwrap()
        .run()
        .unwrap_err();
    assert!(
        matches!(err, BookLeafError::TimestepCollapse { .. }),
        "{err}"
    );
}

#[test]
fn error_messages_locate_the_offender() {
    let e = BookLeafError::NegativeVolume {
        element: 1234,
        volume: -3.5e-9,
    };
    let msg = e.to_string();
    assert!(msg.contains("1234"));
    assert!(msg.contains("-3.5"));
}
