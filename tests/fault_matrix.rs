//! The resilience fault matrix: every injected fault class — corrupt,
//! drop, delay, rank death — against both frames (Lagrangian and ALE),
//! must surface as a **typed error** (or, for a survivable delay, no
//! error and no perturbation): zero panics, zero hangs, and recovery
//! that is deterministic down to the byte.
//!
//! The killer test injects a rank death mid-Noh and recovers
//! *elastically* onto half the ranks, then demands the recovered
//! trajectory match a fault-free run of the same shape sequence
//! bitwise.

use std::time::Duration;

use bookleaf::ale::{AleMode, AleOptions};
use bookleaf::core::{
    decks, ExecutorKind, Observer, RecoveryPolicy, ReshapePolicy, Simulation, SimulationBuilder,
    StepView,
};
use bookleaf::typhon::{FaultKind, FaultPlan};
use bookleaf::util::BookLeafError;

/// A Noh builder on 4 ranks; `ale` switches the frame (the remap adds
/// its own halo phases, widening the faultable surface).
fn noh4(ale: bool) -> SimulationBuilder {
    let mut b = Simulation::builder()
        .deck(decks::noh(12))
        .executor(ExecutorKind::FlatMpi { ranks: 4 })
        .final_time(0.1)
        .max_steps(12);
    if ale {
        b = b.ale(Some(AleOptions {
            mode: AleMode::Eulerian,
            frequency: 1,
        }));
    }
    b
}

/// Fast failure detection: injected faults should resolve in hundreds
/// of milliseconds, not the production 60 s deadline.
const FAST: Duration = Duration::from_millis(300);

#[test]
fn every_fault_class_surfaces_as_a_typed_error_in_both_frames() {
    for ale in [false, true] {
        for kind in [FaultKind::Corrupt, FaultKind::Drop, FaultKind::Kill] {
            let plan = FaultPlan::new(11).with(kind, 3, 1);
            let err = noh4(ale)
                .fault_plan(plan)
                .comm_timeout(FAST)
                .build()
                .unwrap()
                .run()
                .unwrap_err();
            assert!(
                matches!(err, BookLeafError::CommFault(_)),
                "{kind} fault in {} frame surfaced as {err:?}, not a CommFault",
                if ale { "ALE" } else { "Lagrangian" }
            );
        }
    }
}

#[test]
fn blocking_schedule_fails_just_as_typed_as_the_overlapped_one() {
    // The overlap toggle changes message scheduling, not the failure
    // contract: the same injected fault class must surface either way.
    for overlap in [true, false] {
        let err = noh4(false)
            .overlap(overlap)
            .fault_plan(FaultPlan::new(5).corrupt(2, 2))
            .comm_timeout(FAST)
            .build()
            .unwrap()
            .run()
            .unwrap_err();
        assert!(
            matches!(err, BookLeafError::CommFault(_)),
            "overlap={overlap}: {err:?}"
        );
    }
}

#[test]
fn delays_are_survivable_and_bitwise_invisible() {
    for ale in [false, true] {
        let clean = {
            let mut sim = noh4(ale).build().unwrap();
            sim.run().unwrap();
            sim.state().rho.clone()
        };
        // Several delays, spread over ranks and steps, on the default
        // (generous) timeout: latency must never change an answer.
        let plan = FaultPlan::new(77).delay(2, 0).delay(4, 3).delay(7, 1);
        let mut sim = noh4(ale).fault_plan(plan).build().unwrap();
        let report = sim.run().unwrap();
        assert_eq!(report.steps, 12);
        for (e, (a, b)) in clean.iter().zip(&sim.state().rho).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "delay moved a bit at {e} (ale={ale})"
            );
        }
    }
}

#[test]
fn recovery_log_is_identical_across_two_runs_of_the_same_schedule() {
    let dir_for = |tag: &str| {
        let d = std::env::temp_dir().join(format!("bl_fault_matrix_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    };
    let run = |dir: &std::path::Path| {
        // Kill rank 0 at step 6: the supervisor itself sees the typed
        // `Killed {rank: 0, step: 6}`, which also exercises the
        // steps-replayed accounting.
        let plan = FaultPlan::new(21).kill(6, 0);
        let mut sim = noh4(false)
            .fault_plan(plan)
            .comm_timeout(FAST)
            .build()
            .unwrap();
        let policy = RecoveryPolicy::new(dir)
            .checkpoint_every_steps(4)
            .max_retries(2)
            .reshape(ReshapePolicy::Halve);
        sim.run_resilient(&policy).unwrap()
    };
    let (da, db) = (dir_for("a"), dir_for("b"));
    let a = run(&da);
    let b = run(&db);
    assert_eq!(
        a.recovery, b.recovery,
        "recovery logs must be byte-identical"
    );
    assert_eq!(a.recovery.retries(), 1);
    assert!(a.recovery.warnings.is_empty());
    let event = &a.recovery.events[0];
    assert_eq!(event.from_step, 4, "rewind target is the step-4 checkpoint");
    assert_eq!(event.retry_executor, ExecutorKind::FlatMpi { ranks: 2 });
    assert!(event.error.contains("rank 0"), "{}", event.error);
    // The kill named its step, so the replay is accounted: 6 - 4 = 2.
    assert_eq!(a.recovery.steps_replayed, 2);
    assert_eq!(a.steps, 12);
    let _ = std::fs::remove_dir_all(&da);
    let _ = std::fs::remove_dir_all(&db);
}

/// The killer test: rank death mid-Noh, elastic recovery 4 → 2 ranks,
/// and the recovered trajectory matches a fault-free run of the same
/// shape sequence **bitwise**.
#[test]
fn elastic_recovery_from_rank_death_matches_the_uninterrupted_run() {
    let dir = std::env::temp_dir().join(format!("bl_elastic_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Supervised run: 4 ranks, segments of 5 steps, rank 3 dies at
    // step 8 (mid second segment). Recovery rewinds to the step-5
    // checkpoint and finishes on 2 ranks.
    let mut supervised = noh4(false)
        .max_steps(14)
        .fault_plan(FaultPlan::new(42).kill(8, 3))
        .comm_timeout(FAST)
        .build()
        .unwrap();
    let policy = RecoveryPolicy::new(&dir)
        .checkpoint_every_steps(5)
        .max_retries(2)
        .reshape(ReshapePolicy::Halve);
    let report = supervised.run_resilient(&policy).unwrap();
    assert_eq!(report.steps, 14);
    assert_eq!(report.recovery.retries(), 1);
    assert_eq!(report.recovery.events[0].from_step, 5);
    assert_eq!(
        report.recovery.events[0].retry_executor,
        ExecutorKind::FlatMpi { ranks: 2 }
    );

    // Fault-free reference reproducing the exact shape sequence the
    // supervisor produced: 4 ranks for steps 0–5, then 2 ranks for
    // 5–10 and 10–14, handing over through the same checkpoint
    // machinery at the same steps.
    let mut seg0 = noh4(false).max_steps(5).build().unwrap();
    seg0.run().unwrap();
    let ckpt5 = seg0.checkpoint().unwrap();
    let mut seg1 = Simulation::builder()
        .resume_from(ckpt5)
        .executor(ExecutorKind::FlatMpi { ranks: 2 })
        .final_time(0.1)
        .max_steps(10)
        .build()
        .unwrap();
    seg1.run().unwrap();
    let ckpt10 = seg1.checkpoint().unwrap();
    let mut seg2 = Simulation::builder()
        .resume_from(ckpt10)
        .executor(ExecutorKind::FlatMpi { ranks: 2 })
        .final_time(0.1)
        .max_steps(14)
        .build()
        .unwrap();
    seg2.run().unwrap();

    // Same shapes at the same steps: the match must be bitwise (the
    // issue's 1e-12 bound, met exactly).
    for (e, (a, b)) in seg2
        .state()
        .rho
        .iter()
        .zip(&supervised.state().rho)
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "recovered run diverged from the uninterrupted one at element {e}: {a} vs {b}"
        );
    }
    for (n, (a, b)) in seg2.state().u.iter().zip(&supervised.state().u).enumerate() {
        assert_eq!(a.x.to_bits(), b.x.to_bits(), "u.x diverged at node {n}");
        assert_eq!(a.y.to_bits(), b.y.to_bits(), "u.y diverged at node {n}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retry_budget_exhaustion_returns_the_typed_error() {
    let dir = std::env::temp_dir().join(format!("bl_budget_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // A kill rescheduled on every attempt the budget allows: the
    // supervisor must give up with the typed error, not loop forever.
    let plan = FaultPlan::new(9)
        .kill(3, 1)
        .kill(3, 1)
        .on_attempt(1)
        .kill(3, 1)
        .on_attempt(2);
    let mut sim = noh4(false)
        .fault_plan(plan)
        .comm_timeout(FAST)
        .build()
        .unwrap();
    let policy = RecoveryPolicy::new(&dir)
        .checkpoint_every_steps(10)
        .max_retries(2)
        .backoff(Duration::from_millis(1));
    let err = sim.run_resilient(&policy).unwrap_err();
    assert!(matches!(err, BookLeafError::CommFault(_)), "{err:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An observer that panics at a chosen step on rank 0 — stands in for
/// any bug that unwinds a rank thread mid-run.
struct PanicAt(usize);

impl Observer for PanicAt {
    fn step_end(&mut self, view: &StepView<'_>) {
        assert!(
            !(view.rank == 0 && view.step + 1 == self.0),
            "injected observer panic"
        );
    }
}

#[test]
fn a_panicked_hybrid_run_is_typed_and_the_next_run_is_healthy() {
    // Rank 0 unwinds inside its rayon pool mid-run; the team must
    // surface a typed RankPanic (peers time out, the scope joins) …
    let err = Simulation::builder()
        .deck(decks::noh(12))
        .executor(ExecutorKind::Hybrid {
            ranks: 2,
            threads_per_rank: 2,
        })
        .final_time(0.1)
        .max_steps(8)
        .comm_timeout(FAST)
        .observer(PanicAt(3))
        .build()
        .unwrap()
        .run()
        .unwrap_err();
    assert!(
        matches!(err, BookLeafError::RankPanic { rank: 0, .. }),
        "{err:?}"
    );

    // … and a fresh simulation right after must run to completion:
    // nothing global — rayon pools, locks, channels — stays poisoned.
    let mut healthy = Simulation::builder()
        .deck(decks::noh(12))
        .executor(ExecutorKind::Hybrid {
            ranks: 2,
            threads_per_rank: 2,
        })
        .final_time(0.1)
        .max_steps(8)
        .build()
        .unwrap();
    let report = healthy.run().unwrap();
    assert_eq!(report.steps, 8);
    assert!(report.energy_end.is_finite());
}
