//! End-to-end message accounting for the phase-aggregated halo exchange.
//!
//! The cluster cost model charges per message as well as per byte, so
//! the executor's per-step point-to-point message count is a contract:
//! one message per neighbour link per exchange phase — `pre_viscosity`
//! twice per step (predictor + corrector), `pre_acceleration` once, and
//! `post_remap` once per remapped step. These tests pin that contract
//! through [`bookleaf::typhon::CommStats`], and check that aggregation
//! changed only the wire format, not the physics.

use bookleaf::ale::{AleMode, AleOptions};
use bookleaf::core::{decks, Deck, ExecutorKind, RunConfig, Simulation};
use bookleaf::mesh::SubMeshPlan;
use bookleaf::partition::{partition, Strategy};

/// Total directed neighbour links of the run's partition (Σ over ranks
/// of that rank's neighbour count), reproduced with the same
/// deterministic RCB decomposition the executor uses.
fn directed_links(deck: &Deck, ranks: usize) -> usize {
    let owner = partition(&deck.mesh, ranks, Strategy::Rcb).unwrap();
    let subs = SubMeshPlan::build(&deck.mesh, &owner, ranks).unwrap();
    subs.iter().map(|s| s.neighbour_ranks().len()).sum()
}

#[test]
fn lagrangian_step_is_three_messages_per_link() {
    let deck = decks::sod(32, 4);
    let ranks = 4;
    let config = RunConfig {
        final_time: 0.02,
        executor: ExecutorKind::FlatMpi { ranks },
        ..RunConfig::default()
    };
    let mut dist = Simulation::builder()
        .deck(deck.clone())
        .config(config)
        .build()
        .unwrap();
    let report = dist.run().unwrap();
    let links = directed_links(&deck, ranks);
    assert!(report.steps > 0 && links > 0);

    // Pure Lagrangian: 2 × pre_viscosity + 1 × pre_acceleration.
    assert_eq!(report.comm.messages_sent, (report.steps * 3 * links) as u64);
    let visc = report.comm.phase("pre_viscosity").unwrap();
    assert_eq!(visc.messages_sent, (report.steps * 2 * links) as u64);
    let acc = report.comm.phase("pre_acceleration").unwrap();
    assert_eq!(acc.messages_sent, (report.steps * links) as u64);
    assert!(report.comm.phase("post_remap").is_none(), "no remap ran");
    // Phase volumes account for every double on the wire.
    assert_eq!(
        report.comm.doubles_sent,
        visc.doubles_sent + acc.doubles_sent
    );

    // Aggregation must not perturb the physics: the distributed
    // Lagrangian run still agrees with the serial executor, reached
    // through the same builder.
    let mut serial = Simulation::builder()
        .deck(deck.clone())
        .config(RunConfig {
            executor: ExecutorKind::Serial,
            ..config
        })
        .build()
        .unwrap();
    serial.run().unwrap();
    for e in 0..deck.mesh.n_elements() {
        assert!(
            (serial.state().rho[e] - dist.state().rho[e]).abs() <= 1e-12,
            "rho diverged at element {e}: {} vs {}",
            serial.state().rho[e],
            dist.state().rho[e]
        );
        assert!(
            (serial.state().ein[e] - dist.state().ein[e]).abs() <= 1e-12,
            "ein diverged at element {e}"
        );
    }
}

/// The ISSUE acceptance bar: with ALE enabled (remap every step), the
/// per-step message count per neighbour link is exactly 4 — down from
/// ~16 under the one-message-per-field scheme.
#[test]
fn ale_step_is_at_most_four_messages_per_link() {
    let deck = decks::sod(24, 3);
    let ranks = 3;
    let config = RunConfig {
        final_time: 0.01,
        ale: Some(AleOptions {
            mode: AleMode::Eulerian,
            frequency: 1,
        }),
        executor: ExecutorKind::FlatMpi { ranks },
        ..RunConfig::default()
    };
    let report = Simulation::builder()
        .deck(deck.clone())
        .config(config)
        .build()
        .unwrap()
        .run()
        .unwrap();
    let links = directed_links(&deck, ranks);
    assert!(report.steps > 0 && links > 0);

    // 2 × pre_viscosity + pre_acceleration + post_remap = 4 phases/step:
    // exactly 4 messages per neighbour link per step, which also pins
    // the ISSUE's ≤ 4 acceptance bound.
    assert_eq!(report.comm.messages_sent, (report.steps * 4 * links) as u64);
    let remap = report.comm.phase("post_remap").unwrap();
    assert_eq!(remap.messages_sent, (report.steps * links) as u64);
}
