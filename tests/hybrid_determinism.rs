//! Scheduling-determinism pin for the hybrid executor, now that the
//! rayon shim is a real work-stealing pool.
//!
//! The shim's split tree is a pure function of (length, min leaf, pool
//! width) — never of which worker steals what — so a
//! `Hybrid { ranks, threads_per_rank }` run must be **bitwise**
//! reproducible across repetitions, and must agree with the serial
//! [`Driver`] to tight tolerance even with the conflict-free parallel
//! acceleration gather (`AccMode::GatherParallel`) enabled. Repeated
//! runs shake out scheduling nondeterminism: any data race or
//! steal-order-dependent reduction would eventually flip a bit.

use bookleaf::core::{decks, run_distributed, Driver, ExecutorKind, RunConfig};
use bookleaf::hydro::AccMode;

const TOL: f64 = 1e-12;
const REPEATS: usize = 3;

#[test]
fn hybrid_gather_parallel_is_deterministic_and_matches_serial() {
    let deck = decks::sod(32, 4);
    let mut config = RunConfig {
        final_time: 0.03,
        ..RunConfig::default()
    };
    config.lag.acc_mode = AccMode::GatherParallel;

    // Serial reference (same acceleration formulation, serial loops).
    let mut serial = Driver::new(deck.clone(), config).unwrap();
    serial.run().unwrap();

    let hybrid_config = RunConfig {
        executor: ExecutorKind::Hybrid {
            ranks: 2,
            threads_per_rank: 4,
        },
        ..config
    };

    let reference = run_distributed(&deck, &hybrid_config).unwrap();

    // Against the serial driver: tight tolerance on every field.
    for e in 0..deck.mesh.n_elements() {
        assert!(
            (serial.state().rho[e] - reference.rho[e]).abs() <= TOL,
            "rho diverged from serial at element {e}: {} vs {}",
            serial.state().rho[e],
            reference.rho[e]
        );
        assert!(
            (serial.state().ein[e] - reference.ein[e]).abs() <= TOL,
            "ein diverged from serial at element {e}"
        );
    }
    for n in 0..deck.mesh.n_nodes() {
        assert!(
            (serial.state().u[n] - reference.u[n]).norm() <= TOL,
            "velocity diverged from serial at node {n}"
        );
        assert!(
            serial.mesh().nodes[n].distance(reference.nodes[n]) <= TOL,
            "position diverged from serial at node {n}"
        );
    }

    // Across repetitions: bitwise identical, every time.
    for trial in 0..REPEATS {
        let run = run_distributed(&deck, &hybrid_config).unwrap();
        assert_eq!(run.steps, reference.steps, "trial {trial}: step count");
        assert_eq!(
            run.time.to_bits(),
            reference.time.to_bits(),
            "trial {trial}: final time"
        );
        for e in 0..deck.mesh.n_elements() {
            assert_eq!(
                run.rho[e].to_bits(),
                reference.rho[e].to_bits(),
                "trial {trial}: rho not bitwise stable at element {e}"
            );
            assert_eq!(
                run.ein[e].to_bits(),
                reference.ein[e].to_bits(),
                "trial {trial}: ein not bitwise stable at element {e}"
            );
        }
        for n in 0..deck.mesh.n_nodes() {
            assert_eq!(
                run.u[n].x.to_bits(),
                reference.u[n].x.to_bits(),
                "trial {trial}: u.x not bitwise stable at node {n}"
            );
            assert_eq!(
                run.u[n].y.to_bits(),
                reference.u[n].y.to_bits(),
                "trial {trial}: u.y not bitwise stable at node {n}"
            );
            assert_eq!(
                run.nodes[n].x.to_bits(),
                reference.nodes[n].x.to_bits(),
                "trial {trial}: node x not bitwise stable at node {n}"
            );
        }
    }
}

/// The same property with the ALE remap in the loop (every phase of the
/// remap is element/node-parallel under the hybrid executor).
#[test]
fn hybrid_eulerian_ale_is_bitwise_reproducible() {
    use bookleaf::ale::{AleMode, AleOptions};
    let deck = decks::sod(24, 3);
    let mut config = RunConfig {
        final_time: 0.02,
        ale: Some(AleOptions {
            mode: AleMode::Eulerian,
            frequency: 1,
        }),
        executor: ExecutorKind::Hybrid {
            ranks: 2,
            threads_per_rank: 2,
        },
        ..RunConfig::default()
    };
    config.lag.acc_mode = AccMode::GatherParallel;

    let reference = run_distributed(&deck, &config).unwrap();
    for trial in 0..2 {
        let run = run_distributed(&deck, &config).unwrap();
        for e in 0..deck.mesh.n_elements() {
            assert_eq!(
                run.rho[e].to_bits(),
                reference.rho[e].to_bits(),
                "trial {trial}: ALE rho not bitwise stable at element {e}"
            );
        }
        for n in 0..deck.mesh.n_nodes() {
            assert_eq!(
                run.u[n].x.to_bits(),
                reference.u[n].x.to_bits(),
                "trial {trial}: ALE u not bitwise stable at node {n}"
            );
        }
    }
}
