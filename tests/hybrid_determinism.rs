//! Scheduling-determinism pin for the hybrid executor, now that the
//! rayon shim is a real work-stealing pool — routed through the one
//! `Simulation` front door, so these tests also pin that the API
//! redesign moved **no bits** of physics.
//!
//! The shim's split tree is a pure function of (length, min leaf, pool
//! width) — never of which worker steals what — so a
//! `Hybrid { ranks, threads_per_rank }` run must be **bitwise**
//! reproducible across repetitions, and must agree with the serial
//! executor to tight tolerance even with the conflict-free parallel
//! acceleration gather (`AccMode::GatherParallel`) enabled. Repeated
//! runs shake out scheduling nondeterminism: any data race or
//! steal-order-dependent reduction would eventually flip a bit.

use bookleaf::core::{decks, Deck, ExecutorKind, RunConfig, Simulation};
use bookleaf::hydro::AccMode;
use bookleaf::{ConservationTracer, RunReport, Shared};

const TOL: f64 = 1e-12;
const REPEATS: usize = 3;

/// One builder path for every run in this file.
fn run(deck: &Deck, config: RunConfig) -> (Simulation, RunReport) {
    let mut sim = Simulation::builder()
        .deck(deck.clone())
        .config(config)
        .build()
        .unwrap();
    let report = sim.run().unwrap();
    (sim, report)
}

#[test]
fn hybrid_gather_parallel_is_deterministic_and_matches_serial() {
    let deck = decks::sod(32, 4);
    let mut config = RunConfig {
        final_time: 0.03,
        ..RunConfig::default()
    };
    config.lag.acc_mode = AccMode::GatherParallel;

    // Serial reference (same acceleration formulation, serial loops).
    let (serial, _) = run(&deck, config);

    let hybrid_config = RunConfig {
        executor: ExecutorKind::Hybrid {
            ranks: 2,
            threads_per_rank: 4,
        },
        ..config
    };

    let (reference, reference_report) = run(&deck, hybrid_config);

    // Against the serial executor: tight tolerance on every field.
    for e in 0..deck.mesh.n_elements() {
        assert!(
            (serial.state().rho[e] - reference.state().rho[e]).abs() <= TOL,
            "rho diverged from serial at element {e}: {} vs {}",
            serial.state().rho[e],
            reference.state().rho[e]
        );
        assert!(
            (serial.state().ein[e] - reference.state().ein[e]).abs() <= TOL,
            "ein diverged from serial at element {e}"
        );
    }
    for n in 0..deck.mesh.n_nodes() {
        assert!(
            (serial.state().u[n] - reference.state().u[n]).norm() <= TOL,
            "velocity diverged from serial at node {n}"
        );
        assert!(
            serial.mesh().nodes[n].distance(reference.mesh().nodes[n]) <= TOL,
            "position diverged from serial at node {n}"
        );
    }

    // Across repetitions: bitwise identical, every time — and an
    // attached observer must not move a bit either (observers are
    // read-only by contract).
    for trial in 0..REPEATS {
        let tracer = Shared::new(ConservationTracer::new());
        let mut sim = Simulation::builder()
            .deck(deck.clone())
            .config(hybrid_config)
            .observer(tracer.clone())
            .build()
            .unwrap();
        let report = sim.run().unwrap();
        assert_eq!(
            report.steps, reference_report.steps,
            "trial {trial}: step count"
        );
        assert_eq!(
            report.time.to_bits(),
            reference_report.time.to_bits(),
            "trial {trial}: final time"
        );
        assert_eq!(
            tracer.with(|t| t.samples().len()),
            report.steps + 1,
            "trial {trial}: observer fired on the hybrid run"
        );
        for e in 0..deck.mesh.n_elements() {
            assert_eq!(
                sim.state().rho[e].to_bits(),
                reference.state().rho[e].to_bits(),
                "trial {trial}: rho not bitwise stable at element {e}"
            );
            assert_eq!(
                sim.state().ein[e].to_bits(),
                reference.state().ein[e].to_bits(),
                "trial {trial}: ein not bitwise stable at element {e}"
            );
        }
        for n in 0..deck.mesh.n_nodes() {
            assert_eq!(
                sim.state().u[n].x.to_bits(),
                reference.state().u[n].x.to_bits(),
                "trial {trial}: u.x not bitwise stable at node {n}"
            );
            assert_eq!(
                sim.state().u[n].y.to_bits(),
                reference.state().u[n].y.to_bits(),
                "trial {trial}: u.y not bitwise stable at node {n}"
            );
            assert_eq!(
                sim.mesh().nodes[n].x.to_bits(),
                reference.mesh().nodes[n].x.to_bits(),
                "trial {trial}: node x not bitwise stable at node {n}"
            );
        }
    }
}

/// The overlapped halo exchange (split post/complete with
/// interior/boundary kernel sweeps — the default) must be **bitwise**
/// identical to the blocking exchange: overlap changes when receives
/// drain, never a single bit of physics. Pinned under the hybrid
/// executor so the split sweeps also cross the work-stealing pool.
#[test]
fn overlap_on_is_bitwise_identical_to_overlap_off() {
    let deck = decks::sod(32, 4);
    let mut config = RunConfig {
        final_time: 0.03,
        executor: ExecutorKind::Hybrid {
            ranks: 2,
            threads_per_rank: 4,
        },
        overlap: true,
        ..RunConfig::default()
    };
    config.lag.acc_mode = AccMode::GatherParallel;

    let (on, on_report) = run(&deck, config);
    let (off, off_report) = run(
        &deck,
        RunConfig {
            overlap: false,
            ..config
        },
    );

    assert_eq!(on_report.steps, off_report.steps);
    assert_eq!(on_report.time.to_bits(), off_report.time.to_bits());
    for e in 0..deck.mesh.n_elements() {
        assert_eq!(
            on.state().rho[e].to_bits(),
            off.state().rho[e].to_bits(),
            "overlap changed rho at element {e}"
        );
        assert_eq!(
            on.state().ein[e].to_bits(),
            off.state().ein[e].to_bits(),
            "overlap changed ein at element {e}"
        );
        assert_eq!(
            on.state().pressure[e].to_bits(),
            off.state().pressure[e].to_bits(),
            "overlap changed pressure at element {e}"
        );
    }
    for n in 0..deck.mesh.n_nodes() {
        assert_eq!(
            on.state().u[n].x.to_bits(),
            off.state().u[n].x.to_bits(),
            "overlap changed u.x at node {n}"
        );
        assert_eq!(
            on.state().u[n].y.to_bits(),
            off.state().u[n].y.to_bits(),
            "overlap changed u.y at node {n}"
        );
        assert_eq!(
            on.mesh().nodes[n].x.to_bits(),
            off.mesh().nodes[n].x.to_bits(),
            "overlap changed node x at node {n}"
        );
        assert_eq!(
            on.mesh().nodes[n].y.to_bits(),
            off.mesh().nodes[n].y.to_bits(),
            "overlap changed node y at node {n}"
        );
    }
    // And the wire contract is untouched: identical message counts,
    // phase by phase.
    assert_eq!(on_report.comm.messages_sent, off_report.comm.messages_sent);
    assert_eq!(on_report.comm.doubles_sent, off_report.comm.doubles_sent);
    for phase in ["pre_viscosity", "pre_acceleration"] {
        let a = on_report.comm.phase(phase).unwrap();
        let b = off_report.comm.phase(phase).unwrap();
        assert_eq!(a.messages_sent, b.messages_sent, "{phase}");
        assert_eq!(a.doubles_sent, b.doubles_sent, "{phase}");
    }
}

/// The same on/off bitwise pin with the ALE remap in the loop — the
/// remap's boundary-first split (early entities, post, interior, then
/// complete) must not move a bit either, and the 4-messages-per-link
/// step contract holds with overlap enabled.
#[test]
fn overlapped_ale_matches_blocking_ale_bitwise() {
    use bookleaf::ale::{AleMode, AleOptions};
    let deck = decks::sod(24, 3);
    let mut config = RunConfig {
        final_time: 0.02,
        ale: Some(AleOptions {
            mode: AleMode::Eulerian,
            frequency: 1,
        }),
        executor: ExecutorKind::Hybrid {
            ranks: 2,
            threads_per_rank: 2,
        },
        overlap: true,
        ..RunConfig::default()
    };
    config.lag.acc_mode = AccMode::GatherParallel;

    let (on, on_report) = run(&deck, config);
    let (off, off_report) = run(
        &deck,
        RunConfig {
            overlap: false,
            ..config
        },
    );

    assert_eq!(on_report.steps, off_report.steps);
    for e in 0..deck.mesh.n_elements() {
        assert_eq!(
            on.state().rho[e].to_bits(),
            off.state().rho[e].to_bits(),
            "overlapped ALE changed rho at element {e}"
        );
        assert_eq!(
            on.state().ein[e].to_bits(),
            off.state().ein[e].to_bits(),
            "overlapped ALE changed ein at element {e}"
        );
    }
    for n in 0..deck.mesh.n_nodes() {
        assert_eq!(
            on.state().u[n].x.to_bits(),
            off.state().u[n].x.to_bits(),
            "overlapped ALE changed u at node {n}"
        );
    }
    assert_eq!(on_report.comm.messages_sent, off_report.comm.messages_sent);
    let remap_on = on_report.comm.phase("post_remap").unwrap();
    let remap_off = off_report.comm.phase("post_remap").unwrap();
    assert_eq!(remap_on.messages_sent, remap_off.messages_sent);
    assert_eq!(remap_on.doubles_sent, remap_off.doubles_sent);
}

/// The same property with the ALE remap in the loop (every phase of the
/// remap is element/node-parallel under the hybrid executor).
#[test]
fn hybrid_eulerian_ale_is_bitwise_reproducible() {
    use bookleaf::ale::{AleMode, AleOptions};
    let deck = decks::sod(24, 3);
    let mut config = RunConfig {
        final_time: 0.02,
        ale: Some(AleOptions {
            mode: AleMode::Eulerian,
            frequency: 1,
        }),
        executor: ExecutorKind::Hybrid {
            ranks: 2,
            threads_per_rank: 2,
        },
        ..RunConfig::default()
    };
    config.lag.acc_mode = AccMode::GatherParallel;

    let (reference, _) = run(&deck, config);
    for trial in 0..2 {
        let (sim, _) = run(&deck, config);
        for e in 0..deck.mesh.n_elements() {
            assert_eq!(
                sim.state().rho[e].to_bits(),
                reference.state().rho[e].to_bits(),
                "trial {trial}: ALE rho not bitwise stable at element {e}"
            );
        }
        for n in 0..deck.mesh.n_nodes() {
            assert_eq!(
                sim.state().u[n].x.to_bits(),
                reference.state().u[n].x.to_bits(),
                "trial {trial}: ALE u not bitwise stable at node {n}"
            );
        }
    }
}
