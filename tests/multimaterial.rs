//! Multi-material runs exercising the Tait and JWL equations of state
//! through the full driver (the paper's §III-A EoS menu beyond the ideal
//! gas the standard decks use).

use bookleaf::core::{decks, RunConfig, Simulation};
use bookleaf::mesh::geometry::quad_centroid;

#[test]
fn underwater_blast_runs_and_conserves() {
    let deck = decks::underwater(40);
    let config = RunConfig {
        final_time: 0.004,
        ..RunConfig::default()
    };
    let mut driver = Simulation::builder()
        .deck(deck)
        .config(config)
        .build()
        .unwrap();
    let s = driver.run().unwrap();
    assert!(s.steps > 20, "only {} steps", s.steps);
    assert!(s.energy_drift() < 1e-8, "drift {}", s.energy_drift());
}

#[test]
fn pressure_wave_propagates_at_water_sound_speed() {
    // Water cs = sqrt(gamma p0 / rho0) = sqrt(7 * 100) ~ 26.5. By
    // t = 0.008 the acoustic front should be near r = 0.15 + 0.21.
    let deck = decks::underwater(50);
    let t = 0.008;
    let config = RunConfig {
        final_time: t,
        ..RunConfig::default()
    };
    let mut driver = Simulation::builder()
        .deck(deck)
        .config(config)
        .build()
        .unwrap();
    driver.run().unwrap();
    let mesh = driver.mesh();
    let st = driver.state();
    // Outermost radius with a pressure disturbance above the ambient
    // noise floor.
    let front = (0..mesh.n_elements())
        .filter(|&e| mesh.region[e] == 1 && st.pressure[e].abs() > 0.3)
        .map(|e| quad_centroid(&mesh.corners(e)).norm())
        .fold(0.0f64, f64::max);
    let cs = (7.0f64 * 100.0).sqrt();
    let expect = 0.15 + cs * t;
    assert!(
        (front - expect).abs() < 0.15,
        "acoustic front at r = {front:.3}, expected ~{expect:.3}"
    );
}

#[test]
fn bubble_expands_and_water_resists() {
    let deck = decks::underwater(40);
    let config = RunConfig {
        final_time: 0.006,
        ..RunConfig::default()
    };
    let mut driver = Simulation::builder()
        .deck(deck)
        .config(config)
        .build()
        .unwrap();
    driver.run().unwrap();
    let mesh = driver.mesh();
    let st = driver.state();
    // JWL products must have expanded: mean bubble density below initial.
    let (mut bubble_rho, mut nb) = (0.0, 0);
    let (mut water_rho, mut nw) = (0.0, 0);
    for e in 0..mesh.n_elements() {
        if mesh.region[e] == 0 {
            bubble_rho += st.rho[e];
            nb += 1;
        } else {
            water_rho += st.rho[e];
            nw += 1;
        }
    }
    bubble_rho /= nb as f64;
    water_rho /= nw as f64;
    assert!(
        bubble_rho < 1.57,
        "bubble should expand: mean rho {bubble_rho:.3}"
    );
    // Nearly incompressible water: mean density stays within ~2%.
    assert!(
        (water_rho - 1.0).abs() < 0.03,
        "water mean rho {water_rho:.4}"
    );
}

#[test]
fn materials_keep_their_identity() {
    // Region ids ride with elements in the Lagrangian frame: the JWL
    // cells stay JWL however far the mesh moves.
    let deck = decks::underwater(30);
    let regions0 = deck.mesh.region.clone();
    let config = RunConfig {
        final_time: 0.004,
        ..RunConfig::default()
    };
    let mut driver = Simulation::builder()
        .deck(deck)
        .config(config)
        .build()
        .unwrap();
    driver.run().unwrap();
    assert_eq!(driver.mesh().region, regions0);
}

/// The committed two-material example deck (an ideal-gas driver slab
/// pushing into Tait water, mixed EoS across one interface) runs under
/// the generic vocabulary, and the hybrid executor matches serial at
/// 1e-12 on every field — the same bar `tests/hybrid_determinism.rs`
/// pins for the single-material decks.
#[test]
fn two_material_interface_deck_serial_matches_hybrid() {
    use bookleaf::ExecutorKind;
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/decks/two_material.deck"
    );
    let run = |executor: ExecutorKind| {
        let mut sim = Simulation::builder()
            .deck_file(path)
            .executor(executor)
            .build()
            .unwrap();
        let report = sim.run().unwrap();
        assert!(report.steps > 10, "only {} steps", report.steps);
        sim
    };
    let serial = run(ExecutorKind::Serial);
    let hybrid = run(ExecutorKind::Hybrid {
        ranks: 2,
        threads_per_rank: 2,
    });

    // Both materials are actually on the mesh: the driver slab paints
    // region 0 (gas), the water region 1 (Tait).
    let regions = &serial.mesh().region;
    assert!(
        regions.contains(&0) && regions.contains(&1),
        "lost a material"
    );

    const TOL: f64 = 1e-12;
    let (a, b) = (serial.state(), hybrid.state());
    for e in 0..a.rho.len() {
        assert!(
            (a.rho[e] - b.rho[e]).abs() <= TOL,
            "rho diverged at element {e}: {} vs {}",
            a.rho[e],
            b.rho[e]
        );
        assert!(
            (a.ein[e] - b.ein[e]).abs() <= TOL,
            "ein diverged at element {e}"
        );
        assert!(
            (a.pressure[e] - b.pressure[e]).abs() <= TOL,
            "pressure diverged at element {e}"
        );
    }
    for n in 0..a.u.len() {
        assert!(
            (a.u[n] - b.u[n]).norm() <= TOL,
            "velocity diverged at node {n}"
        );
    }
}
