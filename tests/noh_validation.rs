//! The Noh problem vs its exact solution.
//!
//! Paper §III-B: "Noh's problem is used to highlight the wall-heating
//! issue commonly found with artificial viscosity methods." We verify
//! the shock plateau, the shock position, the pre-shock geometric
//! compression — and that the wall-heating artefact is present (it is a
//! *property* of this class of scheme, so its absence would be a bug in
//! the reproduction).

use bookleaf::core::{decks, RunConfig, Simulation};
use bookleaf::mesh::geometry::quad_centroid;
use bookleaf::validate::noh;

fn run_noh(n: usize, t_final: f64) -> Simulation {
    let deck = decks::noh(n);
    let config = RunConfig {
        final_time: t_final,
        ..RunConfig::default()
    };
    let mut driver = Simulation::builder()
        .deck(deck)
        .config(config)
        .build()
        .expect("valid deck");
    driver.run().expect("noh run");
    driver
}

/// Final time of the shared reference run; the analytic expectations in
/// the tests below are all derived from this value.
const T_REF: f64 = 0.6;

/// The 50×50, t=[`T_REF`] reference run is the workhorse of this file;
/// four tests inspect it read-only, so it is computed once and shared
/// (it costs ~15 s in debug builds).
fn reference_run() -> &'static Simulation {
    static RUN: std::sync::OnceLock<Simulation> = std::sync::OnceLock::new();
    RUN.get_or_init(|| run_noh(50, T_REF))
}

#[test]
fn shock_plateau_density_approaches_sixteen() {
    let driver = reference_run();
    let mesh = driver.mesh();
    let st = driver.state();
    // Plateau sample: inside the shock (r < 0.2·0.9) but away from the
    // origin's wall-heating dip (r > 0.05).
    let plateau: Vec<f64> = (0..mesh.n_elements())
        .filter(|&e| {
            let r = quad_centroid(&mesh.corners(e)).norm();
            (0.06..0.16).contains(&r)
        })
        .map(|e| st.rho[e])
        .collect();
    assert!(!plateau.is_empty());
    let mean = plateau.iter().sum::<f64>() / plateau.len() as f64;
    assert!(
        (mean - noh::RHO_POST).abs() < 3.0,
        "plateau density {mean:.2} vs exact {}",
        noh::RHO_POST
    );
    let max = plateau.iter().cloned().fold(0.0f64, f64::max);
    assert!(max > 12.0, "peak plateau density {max:.2}");
}

#[test]
fn shock_sits_at_one_third_t() {
    let t = T_REF;
    let driver = reference_run();
    let mesh = driver.mesh();
    let st = driver.state();
    // The shock is where the radially binned mean density crosses 8
    // (halfway between the plateau 16 and the pre-shock 4); binning
    // averages out the handful of axis-adjacent outlier cells.
    let nbins = 40;
    let rmax = 0.5;
    let mut sum = vec![0.0; nbins];
    let mut cnt = vec![0usize; nbins];
    for e in 0..mesh.n_elements() {
        let r = quad_centroid(&mesh.corners(e)).norm();
        let b = (r / rmax * nbins as f64) as usize;
        if b < nbins {
            sum[b] += st.rho[e];
            cnt[b] += 1;
        }
    }
    let shock_r = (0..nbins)
        .filter(|&b| cnt[b] > 0 && sum[b] / cnt[b] as f64 > 8.0)
        .map(|b| (b as f64 + 0.5) / nbins as f64 * rmax)
        .fold(0.0f64, f64::max);
    let expect = noh::SHOCK_SPEED * t;
    assert!(
        (shock_r - expect).abs() < 0.05,
        "shock at r = {shock_r:.3}, exact {expect:.3}"
    );
}

#[test]
fn pre_shock_geometric_compression() {
    let t = T_REF;
    let driver = reference_run();
    let mesh = driver.mesh();
    let st = driver.state();
    // At r = 0.5 the exact pre-shock density is 1 + t/r = 2.2.
    let ring: Vec<f64> = (0..mesh.n_elements())
        .filter(|&e| {
            let r = quad_centroid(&mesh.corners(e)).norm();
            (0.45..0.55).contains(&r)
        })
        .map(|e| st.rho[e])
        .collect();
    assert!(!ring.is_empty());
    let mean = ring.iter().sum::<f64>() / ring.len() as f64;
    let expect = noh::exact(0.5, t).rho;
    assert!(
        (mean - expect).abs() < 0.35,
        "ring density {mean:.3} vs {expect:.3}"
    );
}

#[test]
fn wall_heating_artifact_is_present() {
    // The paper chose Noh precisely because artificial-viscosity codes
    // overheat the origin: density there dips below the plateau.
    let driver = reference_run();
    let mesh = driver.mesh();
    let st = driver.state();
    let origin_rho = st.rho[0];
    let plateau_max: f64 = (0..mesh.n_elements())
        .filter(|&e| {
            let r = quad_centroid(&mesh.corners(e)).norm();
            (0.06..0.16).contains(&r)
        })
        .map(|e| st.rho[e])
        .fold(0.0f64, f64::max);
    assert!(
        origin_rho < plateau_max,
        "no wall-heating dip: origin {origin_rho:.2} vs plateau max {plateau_max:.2}"
    );
    // And the origin is overheated relative to the exact post-shock
    // energy e = p/((gamma-1) rho) = (16/3)/( (2/3)*16 ) = 0.5.
    assert!(
        st.ein[0] > 0.5,
        "origin energy {} not overheated",
        st.ein[0]
    );
}

#[test]
fn quadrant_symmetry_holds() {
    // The solution must stay symmetric under x <-> y reflection.
    let driver = run_noh(32, 0.3);
    let st = driver.state();
    let n = 32;
    for i in 0..n {
        for j in (i + 1)..n {
            let e = j * n + i;
            let em = i * n + j;
            let (a, b) = (st.rho[e], st.rho[em]);
            assert!(
                (a - b).abs() < 1e-8 * a.max(b).max(1.0),
                "symmetry broken at ({i},{j}): {a} vs {b}"
            );
        }
    }
}

#[test]
fn energy_conserved_through_the_implosion() {
    let deck = decks::noh(40);
    let config = RunConfig {
        final_time: 0.4,
        ..RunConfig::default()
    };
    let mut driver = Simulation::builder()
        .deck(deck)
        .config(config)
        .build()
        .unwrap();
    let s = driver.run().unwrap();
    assert!(s.energy_drift() < 1e-8, "drift {}", s.energy_drift());
    assert!(s.steps > 50);
}
