#![allow(clippy::needless_range_loop)] // index loops mirror the kernel style
//! Property-based tests (proptest) on the core invariants.
//!
//! Random decks, random flows and random partitions must uphold the
//! conservation and monotonicity guarantees the design promises,
//! whatever the inputs.

use bookleaf::ale::{AleMode, AleOptions, Remapper};
use bookleaf::core::{decks, ExecutorKind, RunConfig, Simulation};
use bookleaf::eos::{EosSpec, MaterialTable};
use bookleaf::hydro::{HydroState, LocalRange};
use bookleaf::mesh::{generate_rect, RectSpec};
use bookleaf::partition::{metrics, partition, Strategy};
use bookleaf::util::Vec2;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// A short Lagrangian run of a randomised closed-box deck conserves
    /// mass exactly and total energy to round-off.
    #[test]
    fn random_closed_box_conserves(
        seed_rho in 0.5f64..3.0,
        seed_ein in 0.5f64..3.0,
        hot in 0usize..36,
        n_steps in 1usize..15,
    ) {
        let mesh = generate_rect(&RectSpec::unit_square(6), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let mut st = HydroState::new(
            &mesh,
            &mat,
            |e| seed_rho * (1.0 + 0.2 * ((e * 7 % 5) as f64) / 5.0),
            |e| if e == hot { 5.0 * seed_ein } else { seed_ein },
            |_| Vec2::ZERO,
        ).unwrap();
        let mut mesh = mesh;
        let range = LocalRange::whole(&mesh);
        let m0 = st.total_mass(range);
        let e0 = st.total_energy(&mesh, range);
        for _ in 0..n_steps {
            bookleaf::hydro::lagstep(
                &mut mesh, &mat, &mut st, range, 5e-4,
                &bookleaf::hydro::LagOptions::default(),
                &mut bookleaf::hydro::NoComm,
            ).unwrap();
        }
        prop_assert_eq!(st.total_mass(range), m0);
        let e1 = st.total_energy(&mesh, range);
        prop_assert!(((e1 - e0) / e0).abs() < 1e-9, "energy drift {}", (e1 - e0) / e0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The remap conserves mass and internal energy and never creates new
    /// density extrema, for random fields and random interior distortions.
    #[test]
    fn remap_conserves_and_stays_monotone(
        amp in 0.001f64..0.012,
        phase in 0.0f64..std::f64::consts::TAU,
        rho_hi in 1.5f64..4.0,
    ) {
        let mesh0 = generate_rect(&RectSpec::unit_square(6), |_| 0).unwrap();
        let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
        let mut st = HydroState::new(
            &mesh0,
            &mat,
            |e| if e % 2 == 0 { 1.0 } else { rho_hi },
            |e| 1.0 + 0.1 * (e % 3) as f64,
            |_| Vec2::ZERO,
        ).unwrap();
        let mut mesh = mesh0;
        let range = LocalRange::whole(&mesh);
        let remapper = Remapper::new(&mesh, AleOptions { mode: AleMode::Eulerian, frequency: 1 });

        // Distort the interior and keep the state consistent.
        for n in 0..mesh.n_nodes() {
            let bc = mesh.node_bc[n];
            if !bc.fix_x {
                mesh.nodes[n].x += amp * ((n as f64) * 1.3 + phase).sin();
            }
            if !bc.fix_y {
                mesh.nodes[n].y += amp * ((n as f64) * 2.1 + phase).cos();
            }
        }
        for e in 0..mesh.n_elements() {
            let c = mesh.corners(e);
            st.volume[e] = bookleaf::mesh::geometry::quad_area(&c);
            st.rho[e] = st.mass[e] / st.volume[e];
            let cv = bookleaf::mesh::geometry::corner_volumes(&c);
            st.cnvol[e] = cv;
            for k in 0..4 {
                st.cnmass[e][k] = st.rho[e] * cv[k];
            }
        }
        let mass0 = st.total_mass(range);
        let ie0 = st.internal_energy(range);
        let (lo0, hi0) = st.rho.iter().fold((f64::INFINITY, 0.0f64), |(l, h), &r| (l.min(r), h.max(r)));

        remapper.step(&mut mesh, &mut st, range).unwrap();

        prop_assert!((st.total_mass(range) - mass0).abs() < 1e-12 * mass0.max(1.0));
        prop_assert!((st.internal_energy(range) - ie0).abs() < 1e-12 * ie0.abs().max(1.0));
        let (lo1, hi1) = st.rho.iter().fold((f64::INFINITY, 0.0f64), |(l, h), &r| (l.min(r), h.max(r)));
        // Monotone advection: bounds may tighten, not widen (tolerance for
        // the distorted-volume re-derivation).
        prop_assert!(lo1 >= lo0 * 0.9 - 1e-12, "undershoot {lo1} vs {lo0}");
        prop_assert!(hi1 <= hi0 * 1.1 + 1e-12, "overshoot {hi1} vs {hi0}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// RCB balances arbitrary rectangular meshes into any feasible part
    /// count with every part non-empty.
    #[test]
    fn rcb_always_feasible(nx in 2usize..12, ny in 2usize..12, parts in 1usize..8) {
        let mesh = generate_rect(
            &RectSpec { nx, ny, origin: Vec2::ZERO, extent: Vec2::new(1.0, 0.7) },
            |_| 0,
        ).unwrap();
        prop_assume!(parts <= mesh.n_elements());
        let owner = partition(&mesh, parts, Strategy::Rcb).unwrap();
        let rep = metrics::assess_partition(&mesh, &owner, parts).unwrap();
        prop_assert!(rep.sizes.iter().all(|&s| s > 0));
        prop_assert!(rep.imbalance < 2.0, "imbalance {}", rep.imbalance);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Distributed Sod agrees with serial for arbitrary rank counts.
    #[test]
    fn distributed_matches_serial_for_any_rank_count(ranks in 2usize..6) {
        let deck = decks::sod(24, 3);
        let config = RunConfig { final_time: 0.015, ..RunConfig::default() };
        let mut serial = Simulation::builder().deck(deck.clone()).config(config).build().unwrap();
        serial.run().unwrap();
        let mut dist = Simulation::builder()
            .deck(deck)
            .config(config)
            .executor(ExecutorKind::FlatMpi { ranks })
            .build()
            .unwrap();
        dist.run().unwrap();
        for e in 0..serial.deck().mesh.n_elements() {
            prop_assert!(
                (serial.state().rho[e] - dist.state().rho[e]).abs() < 1e-9,
                "rho mismatch at {} with {} ranks", e, ranks
            );
        }
    }
}
