//! Restart capability: a run interrupted at t₁ and restored from a
//! snapshot must continue the original trajectory.

use bookleaf::core::output::read_snapshot;
use bookleaf::core::{decks, RunConfig, Simulation};
use bookleaf::util::approx_eq;

#[test]
fn restart_continues_the_trajectory() {
    let deck = decks::sod(60, 3);
    let config = RunConfig {
        final_time: 0.1,
        ..RunConfig::default()
    };

    // Reference: one uninterrupted run.
    let mut reference = Simulation::builder()
        .deck(deck.clone())
        .config(config)
        .build()
        .unwrap();
    reference.run().unwrap();

    // Interrupted run: advance halfway, snapshot through bytes, restore
    // into a *fresh* driver, continue.
    let mut first = Simulation::builder()
        .deck(deck.clone())
        .config(config)
        .build()
        .unwrap();
    first.advance_to(0.05).unwrap();
    let mut bytes = Vec::new();
    first.snapshot().unwrap().write(&mut bytes).unwrap();
    drop(first);

    let snap = read_snapshot(&mut bytes.as_slice()).unwrap();
    assert!(approx_eq(snap.time, 0.05, 1e-12));
    let mut resumed = Simulation::builder()
        .deck(deck.clone())
        .config(config)
        .build()
        .unwrap();
    resumed.restore(&snap).unwrap();
    let summary = resumed.run().unwrap();
    assert!(approx_eq(summary.time, 0.1, 1e-12));

    // Trajectories agree: the restart loses no state the step needs.
    // Interrupting at t = 0.05 truncates one dt to land exactly on the
    // target, and the growth limiter then ramps from that truncated
    // value, so the resumed run takes a *different dt sequence*. Across
    // the steep shock front that shows up as a tiny spatial shift, so
    // the right metric is an integrated norm, not pointwise equality.
    let l1 = bookleaf::validate::norms::l1_error(
        &reference.state().rho,
        &resumed.state().rho,
        &reference.state().volume,
    );
    assert!(
        l1 < 5e-4,
        "L1(rho) between reference and resumed runs = {l1:.2e}"
    );
    let max_node_shift = reference
        .mesh()
        .nodes
        .iter()
        .zip(&resumed.mesh().nodes)
        .map(|(a, b)| a.distance(*b))
        .fold(0.0f64, f64::max);
    assert!(
        max_node_shift < 5e-4,
        "mesh shifted by {max_node_shift:.2e}"
    );
    // Conserved quantities are exact regardless of dt sequencing.
    use bookleaf::hydro::LocalRange;
    let range = LocalRange::whole(reference.mesh());
    assert!(approx_eq(
        reference.state().total_mass(range),
        resumed.state().total_mass(range),
        1e-12
    ));
    assert!(approx_eq(
        reference.state().total_energy(reference.mesh(), range),
        resumed.state().total_energy(resumed.mesh(), range),
        1e-9
    ));
}

#[test]
fn advance_to_is_equivalent_to_run() {
    let deck = decks::noh(20);
    let config = RunConfig {
        final_time: 0.06,
        ..RunConfig::default()
    };

    let mut whole = Simulation::builder()
        .deck(deck.clone())
        .config(config)
        .build()
        .unwrap();
    whole.run().unwrap();

    let mut stepped = Simulation::builder()
        .deck(deck)
        .config(config)
        .build()
        .unwrap();
    for k in 1..=6 {
        stepped.advance_to(0.01 * k as f64).unwrap();
    }
    for e in 0..whole.state().rho.len() {
        // advance_to truncates dt at each intermediate target, so the
        // trajectories differ at the dt-sequencing level; physics must
        // still agree closely.
        assert!(
            approx_eq(whole.state().rho[e], stepped.state().rho[e], 5e-3),
            "rho mismatch at {e}: {} vs {}",
            whole.state().rho[e],
            stepped.state().rho[e]
        );
    }
}

#[test]
fn vtk_dump_of_a_real_run() {
    let deck = decks::sedov(16);
    let config = RunConfig {
        final_time: 0.05,
        ..RunConfig::default()
    };
    let mut driver = Simulation::builder()
        .deck(deck)
        .config(config)
        .build()
        .unwrap();
    driver.run().unwrap();
    let mut out = Vec::new();
    bookleaf::core::write_vtk(&mut out, driver.mesh(), driver.state(), "sedov t=0.05").unwrap();
    let text = String::from_utf8(out).unwrap();
    // Spot-check structure and that the blast is in the data.
    assert!(text.contains("CELL_TYPES 256"));
    let rho_section = text.split("SCALARS density").nth(1).unwrap();
    assert!(rho_section
        .lines()
        .skip(2)
        .take(256)
        .all(|l| l.trim().parse::<f64>().is_ok()));
}
