//! Saltzmann's piston: hourglass suppression on a distorted mesh.
//!
//! Paper §III-B: "Saltzmann's piston is a simple one-dimensional piston
//! problem run on a distorted mesh. This is designed to exacerbate
//! hourglass modes and therefore test a code's capability to suppress
//! such modes." The exact solution is a planar strong shock: speed
//! `D = (γ+1)/2 · u_p = 4/3`, post-shock density `(γ+1)/(γ−1) = 4`.

use bookleaf::core::{decks, RunConfig, Simulation};
use bookleaf::hydro::getforce::HourglassControl;
use bookleaf::mesh::geometry::quad_centroid;
use bookleaf::mesh::quality::assess;

fn run_saltzmann(t_final: f64, hg: HourglassControl) -> Result<Simulation, String> {
    let deck = decks::saltzmann(100, 10);
    let config = RunConfig {
        final_time: t_final,
        lag: bookleaf::hydro::LagOptions {
            hourglass: hg,
            ..Default::default()
        },
        ..RunConfig::default()
    };
    let mut driver = Simulation::builder()
        .deck(deck)
        .config(config)
        .build()
        .map_err(|e| e.to_string())?;
    driver.run().map_err(|e| e.to_string())?;
    Ok(driver)
}

#[test]
fn piston_shock_speed_and_compression() {
    let t = 0.4;
    let driver = run_saltzmann(t, HourglassControl::default()).expect("run");
    let mesh = driver.mesh();
    let st = driver.state();

    // Shock position: piston at x = t, shock at x = 4t/3.
    let shock_x = (0..mesh.n_elements())
        .filter(|&e| st.rho[e] > 2.5)
        .map(|e| quad_centroid(&mesh.corners(e)).x)
        .fold(0.0f64, f64::max);
    let expect = 4.0 / 3.0 * t;
    assert!(
        (shock_x - expect).abs() < 0.06,
        "shock at x = {shock_x:.3}, exact {expect:.3}"
    );

    // Post-shock density: plateau between piston and shock at 4.
    let plateau: Vec<f64> = (0..mesh.n_elements())
        .filter(|&e| {
            let x = quad_centroid(&mesh.corners(e)).x;
            (t + 0.02..expect - 0.04).contains(&x)
        })
        .map(|e| st.rho[e])
        .collect();
    assert!(!plateau.is_empty());
    let mean = plateau.iter().sum::<f64>() / plateau.len() as f64;
    assert!((mean - 4.0).abs() < 0.6, "plateau density {mean:.3}");
}

#[test]
fn mesh_survives_untangled() {
    let driver = run_saltzmann(0.5, HourglassControl::default()).expect("run");
    let rep = assess(driver.mesh());
    assert_eq!(rep.n_tangled, 0);
    assert!(rep.min_area > 0.0);
}

#[test]
fn piston_wall_tracks_prescribed_motion() {
    let t = 0.3;
    let driver = run_saltzmann(t, HourglassControl::default()).expect("run");
    let min_x = driver
        .mesh()
        .nodes
        .iter()
        .map(|p| p.x)
        .fold(f64::INFINITY, f64::min);
    assert!(
        (min_x - t).abs() < 1e-6,
        "piston wall at {min_x:.4}, expected {t}"
    );
}

#[test]
fn hourglass_control_reduces_distortion() {
    // The deck's entire purpose: with hourglass control off, the
    // distorted mesh must degrade measurably more (or fail outright).
    let with = run_saltzmann(0.35, HourglassControl::default()).expect("controlled run");
    let q_with = assess(with.mesh());

    match run_saltzmann(0.35, HourglassControl::none()) {
        Err(_) => {
            // Uncontrolled run died (tangled / dt collapse): the control
            // is load-bearing. That is a pass.
        }
        Ok(without) => {
            let q_without = assess(without.mesh());
            assert!(
                q_without.max_skew >= q_with.max_skew - 1e-9,
                "hourglass control should not worsen skew: {} vs {}",
                q_with.max_skew,
                q_without.max_skew
            );
        }
    }
}

#[test]
fn transverse_velocities_stay_small() {
    // The exact solution is 1-D: y velocities are pure hourglass noise
    // and must stay far below the piston speed.
    let driver = run_saltzmann(0.4, HourglassControl::default()).expect("run");
    let st = driver.state();
    let max_v = st.u.iter().map(|u| u.y.abs()).fold(0.0f64, f64::max);
    assert!(max_v < 0.5, "transverse velocity {max_v:.3} too large");
}
