//! The Sedov problem vs the Sedov–Taylor similarity solution.
//!
//! Paper §III-B: "The Sedov problem is a blast wave emanating from a
//! point source. In BookLeaf this is calculated on a Cartesian mesh to
//! test the code's capability to model non-mesh-aligned shocks."
//! We check the shock trajectory against `R(t) = (E t² / (α ρ))^¼`, the
//! front density against the strong-shock jump, and — the point of the
//! deck — that the shock stays radially symmetric on the Cartesian mesh.

use bookleaf::core::{decks, RunConfig, Simulation};
use bookleaf::mesh::geometry::quad_centroid;
use bookleaf::validate::sedov;

fn run_sedov(n: usize, t_final: f64) -> Simulation {
    let deck = decks::sedov(n);
    let config = RunConfig {
        final_time: t_final,
        ..RunConfig::default()
    };
    let mut driver = Simulation::builder()
        .deck(deck)
        .config(config)
        .build()
        .expect("valid deck");
    driver.run().expect("sedov run");
    driver
}

/// Binned radial density profile: (bin centre radius, mean rho).
fn radial_profile(driver: &Simulation, rmax: f64, nbins: usize) -> Vec<(f64, f64)> {
    let mesh = driver.mesh();
    let st = driver.state();
    let mut sum = vec![0.0; nbins];
    let mut cnt = vec![0usize; nbins];
    for e in 0..mesh.n_elements() {
        let r = quad_centroid(&mesh.corners(e)).norm();
        let b = (r / rmax * nbins as f64) as usize;
        if b < nbins {
            sum[b] += st.rho[e];
            cnt[b] += 1;
        }
    }
    (0..nbins)
        .filter(|&b| cnt[b] > 0)
        .map(|b| {
            (
                (b as f64 + 0.5) / nbins as f64 * rmax,
                sum[b] / cnt[b] as f64,
            )
        })
        .collect()
}

#[test]
fn shock_radius_follows_similarity_law() {
    let t = 0.6;
    let driver = run_sedov(45, t);
    let expect = sedov::shock_radius(t, sedov::ALPHA_2D_GAMMA14, 1.0, 1.4);
    // Detect the front as the outermost radius where the binned density
    // exceeds twice the background.
    let profile = radial_profile(&driver, 1.1, 44);
    let shock_r = profile
        .iter()
        .filter(|&&(_, rho)| rho > 2.0)
        .map(|&(r, _)| r)
        .fold(0.0f64, f64::max);
    assert!(
        (shock_r - expect).abs() < 0.12,
        "shock at r = {shock_r:.3}, similarity law {expect:.3}"
    );
}

#[test]
fn front_density_approaches_strong_shock_jump() {
    let driver = run_sedov(45, 0.6);
    // Peak of the radially binned profile should approach the strong-
    // shock jump (γ+1)/(γ−1) = 6: smearing keeps the binned peak below,
    // and individual axis-aligned cells may overshoot, but the *front
    // average* must sit near the jump.
    let profile = radial_profile(&driver, 1.1, 44);
    let rho_peak = profile.iter().map(|&(_, rho)| rho).fold(0.0f64, f64::max);
    assert!(rho_peak > 3.0, "front density {rho_peak:.2} too smeared");
    assert!(
        rho_peak < 7.0,
        "front density {rho_peak:.2} overshoots the jump"
    );
}

#[test]
fn blast_is_radially_symmetric_on_cartesian_mesh() {
    // The deck's purpose: non-mesh-aligned shocks must stay round.
    // Compare the front radius along the x-axis with the diagonal.
    let driver = run_sedov(45, 0.5);
    let mesh = driver.mesh();
    let st = driver.state();
    let front_along = |dir_x: f64, dir_y: f64| -> f64 {
        let dir = bookleaf::util::Vec2::new(dir_x, dir_y).normalized();
        (0..mesh.n_elements())
            .filter(|&e| {
                let c = quad_centroid(&mesh.corners(e));
                let r = c.norm();
                if r < 1e-9 {
                    return false;
                }
                // Within a 10° cone of the direction and shocked.
                (c / r).dot(dir) > 0.985 && st.rho[e] > 2.0
            })
            .map(|e| quad_centroid(&mesh.corners(e)).norm())
            .fold(0.0f64, f64::max)
    };
    let r_axis = front_along(1.0, 0.0);
    let r_diag = front_along(1.0, 1.0);
    assert!(
        r_axis > 0.1 && r_diag > 0.1,
        "no front found: {r_axis} {r_diag}"
    );
    assert!(
        (r_axis - r_diag).abs() < 0.08,
        "front not round: axis {r_axis:.3} vs diagonal {r_diag:.3}"
    );
}

#[test]
fn interior_is_evacuated() {
    // Sedov interiors rarefy towards zero density.
    let driver = run_sedov(45, 0.6);
    let st = driver.state();
    let centre_rho = st.rho[0];
    assert!(
        centre_rho < 0.3,
        "centre density {centre_rho:.3} should be evacuated"
    );
}

#[test]
fn energy_conserved_through_the_blast() {
    let deck = decks::sedov(30);
    let config = RunConfig {
        final_time: 0.3,
        ..RunConfig::default()
    };
    let mut driver = Simulation::builder()
        .deck(deck)
        .config(config)
        .build()
        .unwrap();
    let s = driver.run().unwrap();
    assert!(s.energy_drift() < 1e-8, "drift {}", s.energy_drift());
}
