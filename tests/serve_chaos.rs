//! Deterministic chaos suite for `bookleaf serve`, driven through live
//! TCP requests: injected comm faults, poisoned physics, blown
//! deadlines, overload and drain — every failure must surface as a
//! *typed* response under bounded time, workers must never hang, and
//! concurrent healthy tenants must stay bitwise identical to unloaded
//! runs.

use std::time::Duration;

use bookleaf::serve::quarantine::QuarantinePolicy;
use bookleaf::serve::{client, state_crc, ResourceLimits, ServeConfig, Server};
use bookleaf::Simulation;
use bookleaf_bench::schema::Json;

/// Small healthy decks (serial executor, bounded steps).
const HEALTHY_NOH: &str = "problem = noh\nn = 10\n[control]\nmax_steps = 12\n";
const HEALTHY_SOD: &str = "problem = sod\nnx = 24\nny = 3\n[control]\nmax_steps = 12\n";

/// A deck the health sentinel kills deterministically: the dt floor is
/// forced above the stable step, so `getdt` collapses in a typed way.
const POISON: &str = "problem = noh\nn = 8\n[control]\nmax_steps = 40\n[dt]\ndt_initial = 0.1\ndt_min = 0.09\ndt_max = 0.5\n";

/// A distributed healthy deck the chaos tenant injects faults into.
const DIST_NOH: &str =
    "problem = noh\nn = 10\n[control]\nmax_steps = 12\n[executor]\nmodel = flat_mpi\nranks = 2\n";

/// A long run (tiny mesh, huge budgets) for drain/deadline/in-flight
/// tests: cheap per step, far too long to finish before the test acts.
/// `dt_max` is pinned low so the step count (and hence the run's
/// duration) is deterministic — CFL never gets a say on this mesh.
const LONG_RUN: &str =
    "problem = noh\nn = 4\n[control]\nfinal_time = 10\nmax_steps = 50000\n[dt]\ndt_max = 2e-4\n";

const T: Duration = Duration::from_secs(30);

fn chaos_server(mutate: impl FnOnce(&mut ServeConfig)) -> Server {
    static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let unique = NEXT.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    let mut config = ServeConfig {
        allow_fault_injection: true,
        drain_dir: std::env::temp_dir().join(format!(
            "bookleaf_serve_chaos_{}_{unique}",
            std::process::id()
        )),
        ..ServeConfig::default()
    };
    mutate(&mut config);
    Server::start(config).expect("server start")
}

fn body_json(resp: &client::HttpResponse) -> Json {
    Json::parse(&resp.text()).unwrap_or_else(|e| panic!("unparsable body {:?}: {e}", resp.text()))
}

fn str_field(doc: &Json, key: &str) -> String {
    match doc.get(key) {
        Some(Json::Str(s)) => s.clone(),
        other => panic!("field {key} missing or not a string: {other:?}"),
    }
}

fn num_field(doc: &Json, key: &str) -> f64 {
    match doc.get(key) {
        Some(Json::Num(n)) => *n,
        other => panic!("field {key} missing or not a number: {other:?}"),
    }
}

/// The bit-exact digest of an unloaded direct run of `deck`.
fn direct_crc(deck: &str) -> u32 {
    let mut sim = Simulation::builder()
        .deck_str(deck)
        .build()
        .expect("valid deck");
    sim.run().expect("direct run");
    state_crc(&sim)
}

#[test]
fn health_endpoint_answers_and_unknown_routes_are_typed() {
    let server = chaos_server(|_| {});
    let addr = server.addr();
    let health = client::get_health(addr, T).unwrap();
    assert_eq!(health.status, 200);
    let doc = body_json(&health);
    assert_eq!(str_field(&doc, "status"), "ok");

    let missing = client::request(addr, "GET", "/nope", &[], &[], T).unwrap();
    assert_eq!(missing.status, 404);
    let wrong_method = client::request(addr, "GET", "/run", &[], &[], T).unwrap();
    assert_eq!(wrong_method.status, 405);
    server.shutdown();
}

/// The headline chaos invariant: while an adversarial tenant hammers
/// the server with injected comm faults and poisoned decks, healthy
/// tenants' results stay **bitwise identical** to unloaded runs, every
/// adversarial request draws a typed error, and nothing hangs.
#[test]
fn healthy_tenants_bitwise_identical_under_concurrent_chaos() {
    let crc_noh = direct_crc(HEALTHY_NOH);
    let crc_sod = direct_crc(HEALTHY_SOD);

    let server = chaos_server(|c| {
        c.workers = 4;
        // Keep the adversary talking for the whole test.
        c.quarantine = QuarantinePolicy {
            threshold: u32::MAX,
            ..QuarantinePolicy::default()
        };
    });
    let addr = server.addr();

    let chaos = std::thread::spawn(move || {
        let mut typed = 0usize;
        for i in 0..9 {
            let (deck, headers): (&str, Vec<(&str, &str)>) = match i % 3 {
                0 => (POISON, vec![("X-Tenant", "mallory")]),
                1 => (
                    DIST_NOH,
                    vec![
                        ("X-Tenant", "mallory"),
                        ("X-Fault-Inject", "corrupt:2:0"),
                        ("X-Comm-Timeout-Ms", "500"),
                    ],
                ),
                _ => (
                    DIST_NOH,
                    vec![
                        ("X-Tenant", "mallory"),
                        ("X-Fault-Inject", "kill:3:1"),
                        ("X-Comm-Timeout-Ms", "500"),
                    ],
                ),
            };
            let resp = client::post_run(addr, deck, &headers, T).expect("bounded response");
            assert_ne!(
                resp.status,
                200,
                "faulted request must not succeed: {}",
                resp.text()
            );
            let doc = body_json(&resp);
            assert_eq!(str_field(&doc, "status"), "error");
            let kind = str_field(&doc, "kind");
            assert!(
                ["unhealthy", "comm_fault", "rank_panic", "deadline"].contains(&kind.as_str()),
                "unexpected error kind {kind}"
            );
            typed += 1;
        }
        typed
    });

    let mut healthy = 0usize;
    for round in 0..6 {
        let (deck, want) = if round % 2 == 0 {
            (HEALTHY_NOH, crc_noh)
        } else {
            (HEALTHY_SOD, crc_sod)
        };
        let resp = client::post_run(addr, deck, &[("X-Tenant", "alice")], T).unwrap();
        assert_eq!(resp.status, 200, "healthy run failed: {}", resp.text());
        let doc = body_json(&resp);
        let crc = num_field(&doc, "state_crc") as u32;
        assert_eq!(
            crc, want,
            "healthy tenant's state diverged from the unloaded run under chaos"
        );
        healthy += 1;
    }

    let typed = chaos.join().expect("chaos thread");
    assert_eq!(typed, 9);
    assert_eq!(healthy, 6);
    server.shutdown();
}

#[test]
fn repeated_health_failures_quarantine_with_exponential_backoff() {
    let server = chaos_server(|c| {
        c.quarantine = QuarantinePolicy {
            threshold: 2,
            base: Duration::from_millis(300),
            cap: Duration::from_secs(5),
        };
    });
    let addr = server.addr();
    for _ in 0..2 {
        let resp = client::post_run(addr, POISON, &[("X-Tenant", "mallory")], T).unwrap();
        assert_eq!(resp.status, 422, "{}", resp.text());
        assert_eq!(str_field(&body_json(&resp), "kind"), "unhealthy");
    }
    // The streak tripped: the tenant is quarantined with a typed
    // retry-after.
    let resp = client::post_run(addr, POISON, &[("X-Tenant", "mallory")], T).unwrap();
    assert_eq!(resp.status, 429, "{}", resp.text());
    let doc = body_json(&resp);
    assert_eq!(str_field(&doc, "kind"), "quarantined");
    let retry_ms = num_field(&doc, "retry_after_ms");
    assert!(
        retry_ms > 0.0 && retry_ms <= 300.0,
        "retry_after_ms {retry_ms}"
    );
    assert!(resp.header("retry-after").is_some());

    // Healthy tenants are untouched while mallory is out.
    let resp = client::post_run(addr, HEALTHY_NOH, &[("X-Tenant", "alice")], T).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());

    // The window expires and mallory is admitted again.
    std::thread::sleep(Duration::from_millis(retry_ms as u64 + 100));
    let resp = client::post_run(addr, POISON, &[("X-Tenant", "mallory")], T).unwrap();
    assert_eq!(resp.status, 422, "quarantine must lift: {}", resp.text());
    server.shutdown();
}

#[test]
fn deadlines_surface_as_typed_504() {
    let server = chaos_server(|_| {});
    let addr = server.addr();
    let resp = client::post_run(
        addr,
        LONG_RUN,
        &[("X-Tenant", "alice"), ("X-Deadline-Ms", "50")],
        T,
    )
    .unwrap();
    assert_eq!(resp.status, 504, "{}", resp.text());
    assert_eq!(str_field(&body_json(&resp), "kind"), "deadline");
    server.shutdown();
}

#[test]
fn admission_rejections_are_line_anchored_and_typed() {
    let server = chaos_server(|c| {
        c.limits = ResourceLimits {
            max_mesh_cells: 100,
            ..ResourceLimits::default()
        };
    });
    let addr = server.addr();
    // Mesh over budget: rejected at the `n = 64` line (line 3).
    let resp = client::post_run(
        addr,
        "problem = noh\n# chunky\nn = 64\n",
        &[("X-Tenant", "alice")],
        T,
    )
    .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.text());
    let doc = body_json(&resp);
    assert_eq!(str_field(&doc, "kind"), "deck");
    let error = str_field(&doc, "error");
    assert!(error.contains("line 3"), "not line-anchored: {error}");
    assert!(error.contains("4096"), "should name the size: {error}");

    // The generic vocabulary is admitted through the same budget: a
    // [mesh] section over the cell ceiling is rejected at its `nx`
    // line, not at run time.
    let generic = "name = big\n\
                   [mesh]\n\
                   nx = 64\n\
                   ny = 64\n\
                   [material.gas]\n\
                   eos = ideal_gas\n\
                   gamma = 1.4\n\
                   [region.all]\n\
                   shape = rect\n\
                   x0 = 0\n\
                   y0 = 0\n\
                   x1 = 1\n\
                   y1 = 1\n\
                   material = gas\n\
                   rho = 1\n\
                   ein = 1\n\
                   [control]\n\
                   final_time = 0.01\n";
    let resp = client::post_run(addr, generic, &[("X-Tenant", "alice")], T).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.text());
    let doc = body_json(&resp);
    assert_eq!(str_field(&doc, "kind"), "deck");
    let error = str_field(&doc, "error");
    assert!(error.contains("line 3"), "not line-anchored: {error}");
    assert!(error.contains("4096"), "should name the size: {error}");

    // A deck typo never counts against the tenant's health.
    for _ in 0..5 {
        let resp = client::post_run(addr, "problem = nope\n", &[("X-Tenant", "alice")], T).unwrap();
        assert_eq!(resp.status, 400);
    }
    let resp = client::post_run(addr, HEALTHY_NOH, &[("X-Tenant", "alice")], T).unwrap();
    assert_eq!(
        resp.status,
        200,
        "typos must not quarantine: {}",
        resp.text()
    );
    server.shutdown();
}

#[test]
fn overload_sheds_with_typed_503_instead_of_queueing() {
    let server = chaos_server(|c| {
        c.workers = 1;
        c.queue_depth = 1;
        c.read_timeout = Duration::from_millis(500);
    });
    let addr = server.addr();
    // Two idle connections: one occupies the worker (blocked reading
    // until the read deadline), one fills the queue.
    let _idle_a = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let _idle_b = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    // The third connection must be shed immediately.
    let resp = client::get_health(addr, Duration::from_secs(2)).unwrap();
    assert_eq!(resp.status, 503, "{}", resp.text());
    assert_eq!(str_field(&body_json(&resp), "kind"), "overloaded");
    assert!(server.shed_count() >= 1);
    server.shutdown();
}

#[test]
fn per_tenant_inflight_ceiling_draws_429() {
    let server = chaos_server(|c| {
        c.workers = 3;
        c.limits = ResourceLimits {
            max_inflight_per_tenant: 1,
            ..ResourceLimits::default()
        };
    });
    let addr = server.addr();
    let slow = std::thread::spawn(move || {
        client::post_run(
            addr,
            LONG_RUN,
            &[("X-Tenant", "alice"), ("X-Deadline-Ms", "3000")],
            T,
        )
        .unwrap()
    });
    std::thread::sleep(Duration::from_millis(50));
    let resp = client::post_run(addr, HEALTHY_NOH, &[("X-Tenant", "alice")], T).unwrap();
    assert_eq!(resp.status, 429, "{}", resp.text());
    assert_eq!(str_field(&body_json(&resp), "kind"), "too_many_in_flight");
    // A different tenant is not throttled by alice's backlog.
    let resp = client::post_run(addr, HEALTHY_NOH, &[("X-Tenant", "bob")], T).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    // The long run either finishes cleanly or hits its deadline; both
    // are bounded, typed ends — the point here is the 429 above.
    let first = slow.join().unwrap();
    assert!(
        first.status == 200 || first.status == 504,
        "unexpected end: {} {}",
        first.status,
        first.text()
    );
    server.shutdown();
}

/// Graceful drain: in-flight runs checkpoint out with a resumable
/// handle, and resuming elsewhere completes **bitwise identically** to
/// a run that was never interrupted.
#[test]
fn drain_checkpoints_inflight_and_resume_is_bitwise() {
    let crc_full = direct_crc(LONG_RUN);
    let drain_dir =
        std::env::temp_dir().join(format!("bookleaf_serve_drain_test_{}", std::process::id()));

    let dir = drain_dir.clone();
    let server = chaos_server(move |c| {
        c.drain_dir = dir;
        c.drain_check_steps = 10;
    });
    let addr = server.addr();
    let inflight = std::thread::spawn(move || {
        client::post_run(addr, LONG_RUN, &[("X-Tenant", "alice")], T).unwrap()
    });
    // Let the run get going, then drain.
    std::thread::sleep(Duration::from_millis(50));
    let drained = server.drain(Duration::from_secs(20));
    assert_eq!(drained, 1, "the in-flight run must drain to a checkpoint");

    let resp = inflight.join().unwrap();
    assert_eq!(resp.status, 202, "{}", resp.text());
    let doc = body_json(&resp);
    assert_eq!(str_field(&doc, "status"), "checkpointed");
    let handle = str_field(&doc, "handle");
    assert!(handle.ends_with(".ckpt"), "handle {handle}");

    // A draining server refuses new admissions, typed.
    let refused = client::post_run(addr, HEALTHY_NOH, &[("X-Tenant", "bob")], T).unwrap();
    assert_eq!(refused.status, 503);
    assert_eq!(str_field(&body_json(&refused), "kind"), "draining");
    server.shutdown();

    // A fresh server sharing the drain directory resumes the handle to
    // completion — bitwise identical to the uninterrupted run.
    let dir = drain_dir.clone();
    let server = chaos_server(move |c| c.drain_dir = dir);
    let addr = server.addr();
    let resp = client::request(
        addr,
        "POST",
        "/run",
        &[("X-Tenant", "alice"), ("X-Resume", handle.as_str())],
        &[],
        T,
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let doc = body_json(&resp);
    let crc = num_field(&doc, "state_crc") as u32;
    assert_eq!(
        crc, crc_full,
        "resumed run diverged from the uninterrupted one"
    );

    // Unknown and malicious handles are typed, never path traversal.
    let resp = client::request(
        addr,
        "POST",
        "/run",
        &[("X-Resume", "no_such_000000_step0000000099.ckpt")],
        &[],
        T,
    )
    .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.text());
    assert_eq!(str_field(&body_json(&resp), "kind"), "checkpoint");
    let resp = client::request(
        addr,
        "POST",
        "/run",
        &[("X-Resume", "../../etc/passwd.ckpt")],
        &[],
        T,
    )
    .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.text());
    server.shutdown();
    let _ = std::fs::remove_dir_all(&drain_dir);
}

#[test]
fn streamed_runs_deliver_per_step_lines_and_a_final_verdict() {
    let server = chaos_server(|_| {});
    let addr = server.addr();
    let resp = client::post_run(
        addr,
        HEALTHY_NOH,
        &[("X-Tenant", "alice"), ("X-Stream", "1")],
        T,
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    let text = resp.text();
    let steps = text.lines().filter(|l| l.starts_with("step ")).count();
    assert_eq!(steps, 12, "one line per step:\n{text}");
    let last = text.lines().last().expect("verdict line");
    let doc = Json::parse(last).expect("final chunk is the JSON verdict");
    assert_eq!(str_field(&doc, "status"), "ok");
    let crc = num_field(&doc, "state_crc") as u32;
    assert_eq!(
        crc,
        direct_crc(HEALTHY_NOH),
        "streaming must be bitwise invisible"
    );
    server.shutdown();
}

#[test]
fn fault_injection_is_forbidden_unless_enabled() {
    let server = chaos_server(|c| c.allow_fault_injection = false);
    let addr = server.addr();
    let resp = client::post_run(addr, HEALTHY_NOH, &[("X-Fault-Inject", "kill:1:0")], T).unwrap();
    assert_eq!(resp.status, 403, "{}", resp.text());
    assert_eq!(
        str_field(&body_json(&resp), "kind"),
        "fault_injection_disabled"
    );
    // Garbage fault specs are typed 400s even when injection is on.
    server.shutdown();
    let server = chaos_server(|_| {});
    let resp = client::post_run(
        server.addr(),
        HEALTHY_NOH,
        &[("X-Fault-Inject", "Kill:1:0")],
        T,
    )
    .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.text());
    server.shutdown();
}
