//! Property-based hardening of the serve wire layer and cache keys.
//!
//! The frame parser faces the network, so its contract is absolute:
//! *any* byte stream yields either a parsed request or a typed
//! [`ProtocolError`] — never a panic, never an unbounded read (the
//! inputs here are EOF-bounded cursors; socket reads are bounded by
//! the server's read deadline). The proptest shim generates numbers
//! only, so byte soup is derived from `u64` seeds through a
//! splitmix-style generator — deterministic and shrinkable.

use std::io::Cursor;

use bookleaf::serve::cache::deck_cache_key;
use bookleaf::serve::protocol::parse_request;
use bookleaf::InputDeck;
use proptest::prelude::*;

/// splitmix64: tiny, high-quality, seedable — the byte source for all
/// fuzz inputs in this file.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn random_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed;
    (0..len)
        .map(|_| (splitmix(&mut state) & 0xff) as u8)
        .collect()
}

/// A well-formed small POST the mutation tests start from.
fn valid_request() -> Vec<u8> {
    b"POST /run HTTP/1.1\r\nHost: x\r\nX-Tenant: alice\r\nContent-Length: 20\r\n\r\nproblem = noh\nn = 8\n".to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Pure byte soup: the parser returns a typed result, never panics.
    #[test]
    fn parser_survives_arbitrary_bytes(seed in 0u64..u64::MAX / 2, len in 0usize..2048) {
        let bytes = random_bytes(seed, len);
        let mut reader = Cursor::new(bytes);
        match parse_request(&mut reader, 512, 4096) {
            Ok(req) => prop_assert!(req.method == "GET" || req.method == "POST"),
            Err(err) => prop_assert!(!err.to_string().is_empty()),
        }
    }

    /// Structured corruption: flip a few bytes of a valid request at
    /// seeded positions. Still no panics, and whatever parses obeys
    /// the frame bounds.
    #[test]
    fn parser_survives_mutated_valid_requests(seed in 0u64..u64::MAX / 2, flips in 1usize..8) {
        let mut bytes = valid_request();
        let mut state = seed;
        for _ in 0..flips {
            let pos = (splitmix(&mut state) as usize) % bytes.len();
            bytes[pos] = (splitmix(&mut state) & 0xff) as u8;
        }
        let mut reader = Cursor::new(bytes);
        if let Ok(req) = parse_request(&mut reader, 512, 4096) {
            prop_assert!(req.body.len() <= 4096);
            prop_assert!(req.path.starts_with('/'));
        }
    }

    /// Truncation at every prefix length of a valid frame: typed error
    /// or complete parse, nothing else.
    #[test]
    fn parser_survives_truncation(cut in 0usize..90) {
        let bytes = valid_request();
        let cut = cut.min(bytes.len());
        let mut reader = Cursor::new(bytes[..cut].to_vec());
        if let Ok(req) = parse_request(&mut reader, 512, 4096) {
            // Only the full frame can parse: the body is the last part.
            prop_assert_eq!(req.body.len(), 20);
        }
    }

    /// Cache keys are canonical: cosmetic differences (whitespace,
    /// comments, blank lines) hash identically…
    #[test]
    fn cosmetic_deck_noise_shares_a_cache_key(n in 2usize..40, pad in 0usize..6) {
        let base: InputDeck = format!("problem = noh\nn = {n}\n").parse().unwrap();
        let noisy_text = format!(
            "# header comment\n{}  problem =   noh   # trailing\n\nn = {n}\t\n",
            "\n".repeat(pad),
        );
        let noisy: InputDeck = noisy_text.parse().unwrap();
        prop_assert_eq!(deck_cache_key(&base), deck_cache_key(&noisy));
    }

    /// …while any semantic difference lands on a different key.
    #[test]
    fn semantic_deck_changes_split_cache_keys(n in 2usize..40, steps in 1usize..500) {
        let base: InputDeck = format!("problem = noh\nn = {n}\n").parse().unwrap();
        let bigger: InputDeck = format!("problem = noh\nn = {}\n", n + 1).parse().unwrap();
        let capped: InputDeck =
            format!("problem = noh\nn = {n}\n[control]\nmax_steps = {steps}\n")
                .parse()
                .unwrap();
        let other: InputDeck = format!("problem = sedov\nn = {n}\n").parse().unwrap();
        prop_assert!(deck_cache_key(&base) != deck_cache_key(&bigger));
        prop_assert!(deck_cache_key(&base) != deck_cache_key(&other));
        if capped.max_steps != base.max_steps {
            prop_assert!(deck_cache_key(&base) != deck_cache_key(&capped));
        }
    }
}

#[test]
fn parser_rejects_the_classic_abuse_cases_typed() {
    use bookleaf::serve::ProtocolError;
    type Check = fn(&ProtocolError) -> bool;
    let cases: [(&[u8], Check); 5] = [
        (b"GARBAGE\r\n\r\n", |e| {
            matches!(e, ProtocolError::MalformedRequestLine)
        }),
        (b"DELETE /run HTTP/1.1\r\n\r\n", |e| {
            matches!(e, ProtocolError::UnsupportedMethod(_))
        }),
        (
            b"POST /run HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n",
            |e| matches!(e, ProtocolError::BodyTooLarge { .. }),
        ),
        (b"POST /run HTTP/1.1\r\nContent-Length: nope\r\n\r\n", |e| {
            matches!(e, ProtocolError::BadContentLength(_))
        }),
        (
            b"POST /run HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort",
            |e| matches!(e, ProtocolError::TruncatedBody { .. }),
        ),
    ];
    for (bytes, check) in cases {
        let mut reader = Cursor::new(bytes.to_vec());
        let err = parse_request(&mut reader, 512, 4096).unwrap_err();
        assert!(check(&err), "wrong error class for {bytes:?}: {err}");
    }
}
