//! The front-door acceptance suite: one `Simulation::builder()` code
//! path drives Sod serially, Noh hybrid and a 2-rank distributed Noh —
//! observers firing in all three — and a text deck loaded via
//! `deck_file` reproduces `decks::sod` exactly.

use bookleaf::core::decks;
use bookleaf::util::approx_eq;
use bookleaf::{
    ConservationTracer, Deck, ExecutorKind, Observer, RunReport, Shared, Simulation, StepPhase,
    StepView,
};

/// Counts every hook invocation (all ranks), recording where it fired.
#[derive(Debug, Default)]
struct HookCounter {
    run_begin: usize,
    step_begin: usize,
    lagrangian_phases: usize,
    remap_phases: usize,
    step_end: usize,
    run_end: usize,
    ranks_seen: Vec<usize>,
}

impl Observer for HookCounter {
    fn run_begin(&mut self, view: &StepView<'_>) {
        self.run_begin += 1;
        if !self.ranks_seen.contains(&view.rank) {
            self.ranks_seen.push(view.rank);
        }
    }
    fn step_begin(&mut self, _view: &StepView<'_>) {
        self.step_begin += 1;
    }
    fn phase_end(&mut self, phase: StepPhase, _view: &StepView<'_>) {
        match phase {
            StepPhase::Lagrangian => self.lagrangian_phases += 1,
            StepPhase::Remap => self.remap_phases += 1,
        }
    }
    fn step_end(&mut self, _view: &StepView<'_>) {
        self.step_end += 1;
    }
    fn run_end(&mut self, _view: &StepView<'_>) {
        self.run_end += 1;
    }
}

/// THE one code path: every executor goes through the same builder
/// calls; only the `executor` argument differs.
fn run_observed(
    deck: Deck,
    final_time: f64,
    executor: ExecutorKind,
) -> (
    Simulation,
    RunReport,
    Shared<HookCounter>,
    Shared<ConservationTracer>,
) {
    let counter = Shared::new(HookCounter::default());
    let tracer = Shared::new(ConservationTracer::new());
    let mut sim = Simulation::builder()
        .deck(deck)
        .final_time(final_time)
        .executor(executor)
        .observer(counter.clone())
        .observer(tracer.clone())
        .build()
        .expect("valid deck");
    let report = sim.run().expect("run to completion");
    (sim, report, counter, tracer)
}

#[test]
fn one_builder_path_drives_all_three_executors_with_observers() {
    // Sod serial; Noh hybrid; 2-rank distributed (flat MPI) Noh.
    let runs = [
        (decks::sod(24, 3), 0.02, ExecutorKind::Serial, 1),
        (
            decks::noh(12),
            0.02,
            ExecutorKind::Hybrid {
                ranks: 2,
                threads_per_rank: 2,
            },
            2,
        ),
        (decks::noh(12), 0.02, ExecutorKind::FlatMpi { ranks: 2 }, 2),
    ];
    for (deck, t, executor, ranks) in runs {
        let (_, report, counter, tracer) = run_observed(deck, t, executor);
        assert!(report.steps > 0, "{executor:?}: no steps");
        assert_eq!(report.ranks, ranks, "{executor:?}");

        counter.with(|c| {
            // Hooks fire once per rank at run boundaries, once per rank
            // per step inside.
            assert_eq!(c.run_begin, ranks, "{executor:?}: run_begin");
            assert_eq!(c.run_end, ranks, "{executor:?}: run_end");
            assert_eq!(
                c.step_begin,
                ranks * report.steps,
                "{executor:?}: step_begin"
            );
            assert_eq!(c.step_end, ranks * report.steps, "{executor:?}: step_end");
            assert_eq!(
                c.lagrangian_phases,
                ranks * report.steps,
                "{executor:?}: lagrangian phases"
            );
            assert_eq!(c.remap_phases, 0, "{executor:?}: no ALE configured");
            assert_eq!(c.ranks_seen.len(), ranks, "{executor:?}: every rank fired");
        });

        // The conservation tracer records the globally reduced energy
        // once per step (plus the initial state), on rank 0 only.
        tracer.with(|tr| {
            assert_eq!(
                tr.samples().len(),
                report.steps + 1,
                "{executor:?}: tracer samples"
            );
            assert!(
                tr.max_drift() < 1e-8,
                "{executor:?}: drift {}",
                tr.max_drift()
            );
            // The tracer's energies and the report's agree end to end.
            let first = tr.samples().first().unwrap().energy;
            let last = tr.samples().last().unwrap().energy;
            assert!(approx_eq(first, report.energy_start, 1e-12));
            assert!(approx_eq(last, report.energy_end, 1e-12));
        });
    }
}

#[test]
fn identical_physics_across_executors_through_the_one_path() {
    // The same Noh problem through all three executors: the serial and
    // distributed solutions agree tightly, through identical builder
    // code.
    let (serial, ..) = run_observed(decks::noh(12), 0.02, ExecutorKind::Serial);
    let (hybrid, ..) = run_observed(
        decks::noh(12),
        0.02,
        ExecutorKind::Hybrid {
            ranks: 2,
            threads_per_rank: 2,
        },
    );
    let (flat, ..) = run_observed(decks::noh(12), 0.02, ExecutorKind::FlatMpi { ranks: 2 });
    for e in 0..serial.deck().mesh.n_elements() {
        for (label, sim) in [("hybrid", &hybrid), ("flat", &flat)] {
            assert!(
                approx_eq(serial.state().rho[e], sim.state().rho[e], 1e-10),
                "{label} diverged at element {e}"
            );
        }
    }
}

#[test]
fn run_report_symmetry_between_serial_and_distributed() {
    // The satellite fix: serial runs now carry (zero) comm stats and
    // distributed runs carry merged timers + comm stats + global
    // energies, all in the same `RunReport`.
    let (_, serial, ..) = run_observed(decks::noh(10), 0.01, ExecutorKind::Serial);
    let (_, dist, ..) = run_observed(decks::noh(10), 0.01, ExecutorKind::FlatMpi { ranks: 2 });

    assert_eq!(serial.comm.messages_sent, 0);
    assert!(dist.comm.messages_sent > 0);
    assert!(dist.comm.phase("pre_viscosity").is_some());
    assert!(serial.timers.calls(bookleaf::util::KernelId::GetQ) > 0);
    assert!(dist.timers.calls(bookleaf::util::KernelId::GetQ) > 0);
    // Global energy accounting on both sides, and they agree.
    assert!(serial.energy_start > 0.0 && dist.energy_start > 0.0);
    assert!(approx_eq(serial.energy_start, dist.energy_start, 1e-9));
    assert!(approx_eq(serial.energy_end, dist.energy_end, 1e-6));
}

#[test]
fn deck_file_reproduces_the_programmatic_sod_deck_exactly() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/decks/sod.deck");
    let sim = Simulation::builder()
        .deck_file(path)
        .build()
        .expect("committed deck parses");
    // The committed example is the *generic* re-expression of Sod:
    // every field the physics reads must equal the programmatic
    // constructor bitwise — only the spec provenance differs.
    let reference = decks::sod(40, 4);
    let deck = sim.deck();
    assert_eq!(deck.name, reference.name);
    assert_eq!(deck.mesh, reference.mesh);
    assert_eq!(deck.materials, reference.materials);
    assert_eq!(deck.rho, reference.rho);
    assert_eq!(deck.ein, reference.ein);
    assert_eq!(deck.u, reference.u);
    assert_eq!(deck.piston, reference.piston);
    assert_eq!(
        deck.recommended_final_time,
        reference.recommended_final_time
    );
    assert!(matches!(
        sim.input_deck().unwrap().problem,
        bookleaf::ProblemSpec::Generic(_)
    ));
    // The deck's options became the config (Sod's standard end time).
    assert!((sim.config().final_time - 0.2).abs() < 1e-15);
    assert_eq!(sim.config().executor, ExecutorKind::Serial);
    // And its canonical text form round-trips.
    let input = sim.input_deck().unwrap();
    assert_eq!(&decks::from_str(&decks::to_string(input)).unwrap(), input);
}

#[test]
fn rerunning_a_distributed_simulation_restarts_observer_records() {
    // Distributed simulations re-execute the whole problem on every
    // run(); the shipped recorders must start a fresh trace instead of
    // interleaving two runs' samples, and the frame dumper must write a
    // fresh series rather than deduplicating everything away.
    use bookleaf::FrameDumper;
    let dir = std::env::temp_dir().join("bookleaf_rerun_frames");
    let dumper = Shared::new(FrameDumper::new(&dir, "rerun", 1000));
    let tracer = Shared::new(ConservationTracer::new());
    let mut sim = Simulation::builder()
        .deck(decks::noh(10))
        .final_time(0.01)
        .executor(ExecutorKind::FlatMpi { ranks: 2 })
        .observer(dumper.clone())
        .observer(tracer.clone())
        .build()
        .unwrap();
    let first = sim.run().expect("first run");
    let frames_first = dumper.with(|d| d.written().len());
    assert!(frames_first > 0, "no frames written on the first run");

    let second = sim.run().expect("second run");
    assert_eq!(second.steps, first.steps);
    tracer.with(|tr| {
        assert_eq!(
            tr.samples().len(),
            second.steps + 1,
            "second run must not append to the first run's trace"
        );
        assert_eq!(tr.samples().first().unwrap().step, 0);
    });
    assert_eq!(
        dumper.with(|d| (d.written().len(), d.error().map(String::from))),
        (frames_first, None),
        "second run must rewrite the same frame series"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn text_deck_runs_distributed_from_its_own_executor_section() {
    // Scenario-as-data end to end: the *deck text* selects the 2-rank
    // executor; the builder adds only observers.
    let text = "
        problem = noh
        n = 10

        [control]
        final_time = 0.01

        [executor]
        model = flat_mpi
        ranks = 2
    ";
    let counter = Shared::new(HookCounter::default());
    let mut sim = Simulation::builder()
        .deck_str(text)
        .observer(counter.clone())
        .build()
        .expect("valid deck text");
    let report = sim.run().expect("distributed run from text deck");
    assert_eq!(report.ranks, 2);
    assert!(report.comm.messages_sent > 0);
    counter.with(|c| {
        assert_eq!(c.step_end, 2 * report.steps);
    });
}
