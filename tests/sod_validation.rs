//! Sod shock tube vs the exact Riemann solution.
//!
//! The paper (§III-B): "Sod's shock tube tests a code's ability to model
//! the fundamentals of shock hydrodynamics." We run the standard deck to
//! t = 0.2 in both the Lagrangian frame and the Eulerian (remap every
//! step) frame and compare density/pressure/velocity profiles against
//! the exact solution.

use bookleaf::core::{decks, RunConfig, Simulation};
use bookleaf::hydro::LocalRange;
use bookleaf::mesh::geometry::quad_centroid;
use bookleaf::validate::norms::l1_error;
use bookleaf::validate::riemann::ExactRiemann;

fn run_sod(eulerian: bool, nx: usize) -> (Simulation, f64) {
    let deck = decks::sod(nx, 2);
    let t_final = 0.2;
    let config = RunConfig {
        final_time: t_final,
        ale: eulerian.then(bookleaf::ale::AleOptions::default),
        ..RunConfig::default()
    };
    let mut driver = Simulation::builder()
        .deck(deck)
        .config(config)
        .build()
        .expect("valid deck");
    let summary = driver.run().expect("run to completion");
    assert!((summary.time - t_final).abs() < 1e-12);
    (driver, t_final)
}

/// L1 density error of a finished run against the exact solution.
fn density_l1(driver: &Simulation, t: f64) -> f64 {
    let exact = ExactRiemann::sod();
    let mesh = driver.mesh();
    let st = driver.state();
    let mut computed = Vec::new();
    let mut reference = Vec::new();
    let mut weights = Vec::new();
    for e in 0..mesh.n_elements() {
        let c = quad_centroid(&mesh.corners(e));
        computed.push(st.rho[e]);
        reference.push(exact.sample((c.x - 0.5) / t).rho);
        weights.push(st.volume[e]);
    }
    l1_error(&computed, &reference, &weights)
}

#[test]
fn lagrangian_sod_matches_exact_solution() {
    let (driver, t) = run_sod(false, 100);
    let err = density_l1(&driver, t);
    assert!(err < 0.05, "L1(rho) = {err:.4}");

    // Shock position: the rightmost cell with rho > 0.2 should sit near
    // x = 0.5 + 1.7522 * 0.2 = 0.8504.
    let mesh = driver.mesh();
    let st = driver.state();
    let shock_x = (0..mesh.n_elements())
        .filter(|&e| st.rho[e] > 0.2)
        .map(|e| quad_centroid(&mesh.corners(e)).x)
        .fold(0.0f64, f64::max);
    assert!((shock_x - 0.8504).abs() < 0.04, "shock at {shock_x:.4}");

    // Contact: plateau between contact and shock at rho ≈ 0.2656.
    let plateau: Vec<f64> = (0..mesh.n_elements())
        .filter(|&e| {
            let x = quad_centroid(&mesh.corners(e)).x;
            (0.75..0.82).contains(&x)
        })
        .map(|e| st.rho[e])
        .collect();
    assert!(!plateau.is_empty());
    let mean = plateau.iter().sum::<f64>() / plateau.len() as f64;
    assert!(
        (mean - 0.26557).abs() < 0.02,
        "post-shock plateau {mean:.4}"
    );
}

#[test]
fn eulerian_sod_matches_exact_solution() {
    let (driver, t) = run_sod(true, 100);
    let err = density_l1(&driver, t);
    // The remap adds numerical diffusion; the error budget is looser but
    // still must converge on the right answer.
    assert!(err < 0.09, "L1(rho) = {err:.4}");
    // Mesh stayed put.
    let nodes = &driver.mesh().nodes;
    for (n, p) in nodes.iter().enumerate() {
        let expect_x = (n % 101) as f64 / 100.0;
        assert!((p.x - expect_x).abs() < 1e-10, "node {n} at {}", p.x);
    }
}

#[test]
fn lagrangian_sod_converges_with_resolution() {
    let (coarse, t) = run_sod(false, 50);
    let (fine, _) = run_sod(false, 200);
    let e_coarse = density_l1(&coarse, t);
    let e_fine = density_l1(&fine, t);
    assert!(
        e_fine < 0.75 * e_coarse,
        "no convergence: coarse {e_coarse:.4} fine {e_fine:.4}"
    );
}

#[test]
fn sod_velocity_plateau_matches_star_state() {
    let (driver, _) = run_sod(false, 100);
    let exact = ExactRiemann::sod();
    // Nodes between the contact and the shock move at u* = 0.9274.
    let mesh = driver.mesh();
    let st = driver.state();
    let us: Vec<f64> = (0..mesh.n_nodes())
        .filter(|&n| (0.75..0.82).contains(&mesh.nodes[n].x))
        .map(|n| st.u[n].x)
        .collect();
    assert!(!us.is_empty());
    let mean = us.iter().sum::<f64>() / us.len() as f64;
    assert!(
        (mean - exact.u_star).abs() < 0.05,
        "u plateau {mean:.4} vs {:.4}",
        exact.u_star
    );
}

#[test]
fn sod_energy_conserved_in_lagrangian_frame() {
    let deck = decks::sod(80, 2);
    let config = RunConfig {
        final_time: 0.2,
        ..RunConfig::default()
    };
    let mut driver = Simulation::builder()
        .deck(deck)
        .config(config)
        .build()
        .unwrap();
    let s = driver.run().unwrap();
    assert!(s.energy_drift() < 1e-9, "drift {}", s.energy_drift());
    // Mass identity: rho * V == element mass everywhere.
    let st = driver.state();
    let range = LocalRange::whole(driver.mesh());
    // Tube height is ny/nx = 2/80 = 0.025.
    let total = st.total_mass(range);
    assert!((total - (0.5 * 0.025 + 0.5 * 0.025 * 0.125)).abs() < 1e-12);
}
