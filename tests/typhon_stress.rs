//! Stress tests for the Typhon runtime: many ranks, dense traffic,
//! interleaved collectives — the failure modes of real message-passing
//! layers (tag confusion, deadlock, lost messages) must not exist.

use bookleaf::typhon::Typhon;

#[test]
fn all_to_all_storm_with_interleaved_reductions() {
    // Every rank sends a distinct payload to every other rank each round,
    // with a reduction between rounds; receives happen in reverse rank
    // order to force the out-of-order mailbox path.
    let n = 8;
    let rounds = 25;
    let out = Typhon::run(n, |ctx| {
        let me = ctx.rank();
        let mut checksum = 0.0;
        for round in 0..rounds {
            let tag = ctx.next_tag();
            for to in 0..n {
                if to != me {
                    ctx.send(to, tag, vec![(me * 1000 + round) as f64]);
                }
            }
            for from in (0..n).rev() {
                if from != me {
                    let got = ctx.recv(from, tag);
                    assert_eq!(got[0], (from * 1000 + round) as f64);
                    checksum += got[0];
                }
            }
            // A reduction mid-storm must not cross wires with the p2p tags.
            let s = ctx.allreduce_sum(1.0);
            assert_eq!(s, n as f64);
        }
        checksum
    })
    .unwrap();
    // Every rank received the same set of payloads, minus its own
    // contribution (for rank 0 that is `0 * 1000 + r`, i.e. just `r`).
    let expect: f64 = (0..8)
        .flat_map(|from| (0..rounds).map(move |r| (from * 1000 + r) as f64))
        .sum::<f64>()
        - (0..rounds).map(|r| r as f64).sum::<f64>();
    assert_eq!(out[0], expect);
    for w in out.windows(2) {
        // Checksums differ only by each rank's own excluded contribution.
        assert!(w[0] != w[1] || n == 1);
    }
}

#[test]
fn large_payloads_survive() {
    let out = Typhon::run(2, |ctx| {
        let tag = ctx.next_tag();
        if ctx.rank() == 0 {
            let big: Vec<f64> = (0..1_000_000).map(|i| i as f64).collect();
            ctx.send(1, tag, big);
            0.0
        } else {
            let got = ctx.recv(0, tag);
            assert_eq!(got.len(), 1_000_000);
            got[999_999]
        }
    })
    .unwrap();
    assert_eq!(out[1], 999_999.0);
}

#[test]
fn many_ranks_reduce_correctly() {
    let n = 16;
    let out = Typhon::run(n, |ctx| {
        let mut mins = Vec::new();
        for i in 0..50 {
            mins.push(ctx.allreduce_min((ctx.rank() as f64 - i as f64).abs()));
        }
        mins
    })
    .unwrap();
    for r in &out {
        for (i, &m) in r.iter().enumerate() {
            // min over ranks of |rank - i| is 0 while i < n, else i - (n-1).
            let expect = if i < n { 0.0 } else { (i + 1 - n) as f64 };
            assert_eq!(m, expect, "round {i}");
        }
    }
}

#[test]
fn unbalanced_send_patterns_do_not_deadlock() {
    // Rank 0 sends a burst to rank 1 before rank 1 posts any receive;
    // rank 1 receives them interleaved with its own sends back.
    let out = Typhon::run(2, |ctx| {
        let base = ctx.next_tag();
        // Both ranks agree on 20 tags up front.
        let tags: Vec<u64> = (0..20).map(|i| base + i).collect();
        {
            let mut t = ctx.next_tag();
            while t < base + 19 {
                t = ctx.next_tag();
            }
        }
        if ctx.rank() == 0 {
            for &t in &tags {
                ctx.send(1, t, vec![t as f64]);
            }
            let mut sum = 0.0;
            for &t in &tags {
                sum += ctx.recv(1, t)[0];
            }
            sum
        } else {
            // Receive in reverse, replying as we go.
            let mut sum = 0.0;
            for &t in tags.iter().rev() {
                sum += ctx.recv(0, t)[0];
                ctx.send(0, t, vec![t as f64 * 2.0]);
            }
            sum
        }
    })
    .unwrap();
    let base_sum: f64 = out[1]; // Σ t
    assert_eq!(out[0], 2.0 * base_sum);
}
