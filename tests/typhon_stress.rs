//! Stress tests for the Typhon runtime: many ranks, dense traffic,
//! interleaved collectives, asymmetric topologies — the failure modes of
//! real message-passing layers (tag confusion, deadlock, lost messages)
//! must not exist.

use bookleaf::mesh::{generate_rect, RectSpec, SubMesh, SubMeshPlan};
use bookleaf::typhon::{Entity, FieldMut, HaloPlanBuilder, SlotKind, Typhon};
use bookleaf::util::Vec2;

#[test]
fn all_to_all_storm_with_interleaved_reductions() {
    // Every rank sends a distinct payload to every other rank each round,
    // with a reduction between rounds; receives happen in reverse rank
    // order to force the out-of-order mailbox path.
    let n = 8;
    let rounds = 25;
    let out = Typhon::run(n, |ctx| {
        let me = ctx.rank();
        let mut checksum = 0.0;
        for round in 0..rounds {
            let tag = ctx.next_tag();
            for to in 0..n {
                if to != me {
                    ctx.send(to, tag, vec![(me * 1000 + round) as f64]).unwrap();
                }
            }
            for from in (0..n).rev() {
                if from != me {
                    let got = ctx.recv(from, tag).unwrap();
                    assert_eq!(got[0], (from * 1000 + round) as f64);
                    checksum += got[0];
                }
            }
            // A reduction mid-storm must not cross wires with the p2p tags.
            let s = ctx.allreduce_sum(1.0).unwrap();
            assert_eq!(s, n as f64);
        }
        checksum
    })
    .unwrap();
    // Every rank received the same set of payloads, minus its own
    // contribution (for rank 0 that is `0 * 1000 + r`, i.e. just `r`).
    let expect: f64 = (0..8)
        .flat_map(|from| (0..rounds).map(move |r| (from * 1000 + r) as f64))
        .sum::<f64>()
        - (0..rounds).map(|r| r as f64).sum::<f64>();
    assert_eq!(out[0], expect);
    for w in out.windows(2) {
        // Checksums differ only by each rank's own excluded contribution.
        assert!(w[0] != w[1] || n == 1);
    }
}

#[test]
fn large_payloads_survive() {
    let out = Typhon::run(2, |ctx| {
        let tag = ctx.next_tag();
        if ctx.rank() == 0 {
            let big: Vec<f64> = (0..1_000_000).map(|i| i as f64).collect();
            ctx.send(1, tag, big).unwrap();
            0.0
        } else {
            let got = ctx.recv(0, tag).unwrap();
            assert_eq!(got.len(), 1_000_000);
            got[999_999]
        }
    })
    .unwrap();
    assert_eq!(out[1], 999_999.0);
}

#[test]
fn many_ranks_reduce_correctly() {
    let n = 16;
    let out = Typhon::run(n, |ctx| {
        let mut mins = Vec::new();
        for i in 0..50 {
            mins.push(
                ctx.allreduce_min((ctx.rank() as f64 - i as f64).abs())
                    .unwrap(),
            );
        }
        mins
    })
    .unwrap();
    for r in &out {
        for (i, &m) in r.iter().enumerate() {
            // min over ranks of |rank - i| is 0 while i < n, else i - (n-1).
            let expect = if i < n { 0.0 } else { (i + 1 - n) as f64 };
            assert_eq!(m, expect, "round {i}");
        }
    }
}

/// A 4-rank L-shaped/unequal partition of a 6x6 grid: the bottom half is
/// split evenly at i = 3, the top half unevenly at i = 1, so the rank
/// neighbour sets differ (ranks 0 and 3 have three links, 1 and 2 two).
///
/// ```text
///   2 | 3 3 3 3 3       (j >= 3)
///   --+-----------
///   0 0 0 | 1 1 1       (j <  3)
/// ```
fn l_shaped_submeshes() -> Vec<SubMesh> {
    let n = 6;
    let m = generate_rect(&RectSpec::unit_square(n), |_| 0).unwrap();
    let owner: Vec<usize> = (0..m.n_elements())
        .map(|e| {
            let i = e % n;
            let j = e / n;
            if j < 3 {
                usize::from(i >= 3)
            } else if i < 1 {
                2
            } else {
                3
            }
        })
        .collect();
    SubMeshPlan::build(&m, &owner, 4).unwrap()
}

#[test]
fn l_shaped_partition_has_unequal_neighbour_sets() {
    let subs = l_shaped_submeshes();
    let links: Vec<Vec<usize>> = subs.iter().map(SubMesh::neighbour_ranks).collect();
    // The asymmetry is the point of this topology.
    assert_eq!(links[0], vec![1, 2, 3]);
    assert_eq!(links[1], vec![0, 3]);
    assert_eq!(links[2], vec![0, 3]);
    assert_eq!(links[3], vec![0, 1, 2]);
}

/// Repeated-phase tag stress through the aggregated plan on the L-shaped
/// topology: many rounds of two multi-slot phases, ghost data verified
/// every round, and the message-count invariant
/// `messages_sent == phase executions × neighbour links` held exactly —
/// per rank and per phase — despite the unequal neighbour sets.
#[test]
fn l_shaped_halo_plan_tag_stress() {
    let subs = l_shaped_submeshes();
    let rounds = 25;
    let out = Typhon::run(4, |ctx| {
        let sub = &subs[ctx.rank()];
        let mut b = HaloPlanBuilder::new(&sub.el_exchange, &sub.nd_exchange);
        let state = b.phase(
            "state",
            &[
                (Entity::Element, SlotKind::Scalar),
                (Entity::Node, SlotKind::Vec2),
            ],
        );
        let corners = b.phase(
            "corners",
            &[
                (Entity::Element, SlotKind::Corner4),
                (Entity::Element, SlotKind::CornerVec2),
            ],
        );
        let plan = b.build();

        let ne = sub.mesh.n_elements();
        let nn = sub.mesh.n_nodes();
        let mut ok = true;
        for round in 0..rounds {
            let salt = 10_000.0 * round as f64;
            let mut sc: Vec<f64> = (0..ne)
                .map(|e| {
                    if sub.owns_element(e) {
                        sub.el_l2g[e] as f64 + salt
                    } else {
                        -1.0
                    }
                })
                .collect();
            let mut nd: Vec<Vec2> = (0..nn)
                .map(|n| {
                    if sub.owns_node(n) {
                        Vec2::new(sub.nd_l2g[n] as f64 + salt, round as f64)
                    } else {
                        Vec2::new(-1.0, -1.0)
                    }
                })
                .collect();
            let mut c4: Vec<[f64; 4]> = (0..ne)
                .map(|e| {
                    if sub.owns_element(e) {
                        let g = sub.el_l2g[e] as f64 + salt;
                        [g, g + 0.25, g + 0.5, g + 0.75]
                    } else {
                        [-1.0; 4]
                    }
                })
                .collect();
            let mut cv: Vec<[Vec2; 4]> = (0..ne)
                .map(|e| {
                    if sub.owns_element(e) {
                        let g = sub.el_l2g[e] as f64 + salt;
                        std::array::from_fn(|c| Vec2::new(g + c as f64, g - c as f64))
                    } else {
                        [Vec2::new(-1.0, -1.0); 4]
                    }
                })
                .collect();

            plan.execute(
                ctx,
                state,
                &mut [FieldMut::Scalar(&mut sc), FieldMut::Vec2(&mut nd)],
            )
            .unwrap();
            plan.execute(
                ctx,
                corners,
                &mut [FieldMut::Corner4(&mut c4), FieldMut::CornerVec2(&mut cv)],
            )
            .unwrap();

            ok &= (0..ne).all(|e| sc[e] == sub.el_l2g[e] as f64 + salt);
            ok &= (0..nn).all(|n| nd[n] == Vec2::new(sub.nd_l2g[n] as f64 + salt, round as f64));
            ok &= (0..ne).all(|e| {
                let g = sub.el_l2g[e] as f64 + salt;
                c4[e] == [g, g + 0.25, g + 0.5, g + 0.75]
                    && (0..4).all(|c| cv[e][c] == Vec2::new(g + c as f64, g - c as f64))
            });
        }
        (ctx.stats(), plan.link_ranks(), ok)
    })
    .unwrap();

    for (rank, (stats, link_ranks, ok)) in out.into_iter().enumerate() {
        assert!(ok, "rank {rank}: ghost data corrupted under tag stress");
        assert_eq!(
            link_ranks,
            subs[rank].neighbour_ranks(),
            "rank {rank}: plan links disagree with the submesh schedules"
        );
        let n_links = link_ranks.len();
        // Two phases per round, one message per link per phase execution.
        let expect = (2 * rounds * n_links) as u64;
        assert_eq!(
            stats.messages_sent, expect,
            "rank {rank}: messages_sent != active_phases × neighbour_links"
        );
        for name in ["state", "corners"] {
            let p = stats.phase(name).unwrap();
            assert_eq!(
                p.messages_sent,
                (rounds * n_links) as u64,
                "rank {rank}, phase {name}"
            );
        }
    }
}

/// The split post/complete path under stress: on the L-shaped 4-rank
/// topology, both phases are posted back-to-back each round (two
/// exchanges in flight at once, on ranks with *unequal* neighbour sets)
/// and completed in reverse order, for many rounds. No tag collisions —
/// every ghost value verified every round — and the message-count
/// invariant holds exactly: splitting a phase never changes what flows,
/// only when the receives drain.
#[test]
fn l_shaped_split_post_complete_interleaved_phases() {
    let subs = l_shaped_submeshes();
    let rounds = 25;
    let out = Typhon::run(4, |ctx| {
        let sub = &subs[ctx.rank()];
        let mut b = HaloPlanBuilder::new(&sub.el_exchange, &sub.nd_exchange);
        let state = b.phase(
            "state",
            &[
                (Entity::Element, SlotKind::Scalar),
                (Entity::Node, SlotKind::Vec2),
            ],
        );
        let corners = b.phase(
            "corners",
            &[
                (Entity::Element, SlotKind::Corner4),
                (Entity::Element, SlotKind::CornerVec2),
            ],
        );
        let plan = b.build();

        let ne = sub.mesh.n_elements();
        let nn = sub.mesh.n_nodes();
        let mut ok = true;
        for round in 0..rounds {
            let salt = 10_000.0 * round as f64;
            let mut sc: Vec<f64> = (0..ne)
                .map(|e| {
                    if sub.owns_element(e) {
                        sub.el_l2g[e] as f64 + salt
                    } else {
                        -1.0
                    }
                })
                .collect();
            let mut nd: Vec<Vec2> = (0..nn)
                .map(|n| {
                    if sub.owns_node(n) {
                        Vec2::new(sub.nd_l2g[n] as f64 + salt, round as f64)
                    } else {
                        Vec2::new(-1.0, -1.0)
                    }
                })
                .collect();
            let mut c4: Vec<[f64; 4]> = (0..ne)
                .map(|e| {
                    if sub.owns_element(e) {
                        let g = sub.el_l2g[e] as f64 + salt;
                        [g, g + 0.25, g + 0.5, g + 0.75]
                    } else {
                        [-1.0; 4]
                    }
                })
                .collect();
            let mut cv: Vec<[Vec2; 4]> = (0..ne)
                .map(|e| {
                    if sub.owns_element(e) {
                        let g = sub.el_l2g[e] as f64 + salt;
                        std::array::from_fn(|c| Vec2::new(g + c as f64, g - c as f64))
                    } else {
                        [Vec2::new(-1.0, -1.0); 4]
                    }
                })
                .collect();

            // Post both phases before completing either, and complete
            // them out of order.
            let mut f_state = [FieldMut::Scalar(&mut sc), FieldMut::Vec2(&mut nd)];
            let mut f_corners = [FieldMut::Corner4(&mut c4), FieldMut::CornerVec2(&mut cv)];
            let t_state = plan.post(ctx, state, &f_state).unwrap();
            let t_corners = plan.post(ctx, corners, &f_corners).unwrap();
            plan.complete(ctx, t_corners, &mut f_corners).unwrap();
            plan.complete(ctx, t_state, &mut f_state).unwrap();

            ok &= (0..ne).all(|e| sc[e] == sub.el_l2g[e] as f64 + salt);
            ok &= (0..nn).all(|n| nd[n] == Vec2::new(sub.nd_l2g[n] as f64 + salt, round as f64));
            ok &= (0..ne).all(|e| {
                let g = sub.el_l2g[e] as f64 + salt;
                c4[e] == [g, g + 0.25, g + 0.5, g + 0.75]
                    && (0..4).all(|c| cv[e][c] == Vec2::new(g + c as f64, g - c as f64))
            });
        }
        (ctx.stats(), plan.link_ranks(), ok)
    })
    .unwrap();

    for (rank, (stats, link_ranks, ok)) in out.into_iter().enumerate() {
        assert!(ok, "rank {rank}: ghost data corrupted by split exchanges");
        assert_eq!(link_ranks, subs[rank].neighbour_ranks());
        let n_links = link_ranks.len();
        let expect = (2 * rounds * n_links) as u64;
        assert_eq!(
            stats.messages_sent, expect,
            "rank {rank}: split posts changed the message count"
        );
        for name in ["state", "corners"] {
            let p = stats.phase(name).unwrap();
            assert_eq!(
                p.messages_sent,
                (rounds * n_links) as u64,
                "rank {rank}, phase {name}"
            );
            // The tickets stayed open across the interleaving: every
            // phase accumulated a real overlap window.
            assert!(
                p.overlap_window_seconds > 0.0,
                "rank {rank}, phase {name}: no overlap window recorded"
            );
        }
    }
}

#[test]
fn unbalanced_send_patterns_do_not_deadlock() {
    // Rank 0 sends a burst to rank 1 before rank 1 posts any receive;
    // rank 1 receives them interleaved with its own sends back.
    let out = Typhon::run(2, |ctx| {
        let base = ctx.next_tag();
        // Both ranks agree on 20 tags up front.
        let tags: Vec<u64> = (0..20).map(|i| base + i).collect();
        {
            let mut t = ctx.next_tag();
            while t < base + 19 {
                t = ctx.next_tag();
            }
        }
        if ctx.rank() == 0 {
            for &t in &tags {
                ctx.send(1, t, vec![t as f64]).unwrap();
            }
            let mut sum = 0.0;
            for &t in &tags {
                sum += ctx.recv(1, t).unwrap()[0];
            }
            sum
        } else {
            // Receive in reverse, replying as we go.
            let mut sum = 0.0;
            for &t in tags.iter().rev() {
                sum += ctx.recv(0, t).unwrap()[0];
                ctx.send(0, t, vec![t as f64 * 2.0]).unwrap();
            }
            sum
        }
    })
    .unwrap();
    let base_sum: f64 = out[1]; // Σ t
    assert_eq!(out[0], 2.0 * base_sum);
}
