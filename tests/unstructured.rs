//! Genuinely unstructured meshes: "since the mesh is unstructured, the
//! number of cells surrounding a node is arbitrary" (paper §III-A).
//!
//! The generated rectangular decks all have valence-4 interiors, so this
//! suite hand-builds a *pinwheel* — five quadrilaterals meeting at one
//! central node (valence 5) — and pushes it through the full stack:
//! connectivity, geometry, state setup, and Lagrangian stepping.

use bookleaf::eos::{EosSpec, MaterialTable};
use bookleaf::hydro::{lagstep, HydroState, LagOptions, LocalRange, NoComm};
use bookleaf::mesh::{Mesh, NodeBc};
use bookleaf::util::{approx_eq, Vec2};

/// Five quads around a central node: node 0 at the origin (valence 5),
/// ring-1 nodes A_i at radius 1, ring-2 nodes B_i at radius 1.3 between
/// them. Quad i = (centre, A_i, B_i, A_{i+1}).
fn pinwheel() -> Mesh {
    let sector = std::f64::consts::TAU / 5.0;
    let mut nodes = vec![Vec2::ZERO];
    for i in 0..5 {
        let th = sector * i as f64;
        nodes.push(Vec2::new(th.cos(), th.sin()));
    }
    for i in 0..5 {
        let th = sector * (i as f64 + 0.5);
        nodes.push(Vec2::new(1.3 * th.cos(), 1.3 * th.sin()));
    }
    let a = |i: usize| 1 + (i % 5) as u32; // ring-1
    let b = |i: usize| 6 + (i % 5) as u32; // ring-2
    let elnd: Vec<[u32; 4]> = (0..5).map(|i| [0, a(i), b(i), a(i + 1)]).collect();
    // Outer nodes pinned (a closed "vessel"), centre free.
    let mut bc = vec![NodeBc::CORNER; 11];
    bc[0] = NodeBc::FREE;
    Mesh::from_raw(nodes, elnd, bc, vec![0; 5]).expect("valid pinwheel")
}

#[test]
fn pinwheel_connectivity() {
    let m = pinwheel();
    assert_eq!(m.n_elements(), 5);
    assert_eq!(m.n_nodes(), 11);
    // The central node has valence 5 — impossible on a logically
    // structured mesh.
    assert_eq!(m.elements_of_node(0).len(), 5);
    // Each ring-1 node joins two quads, ring-2 nodes one.
    for i in 1..=5 {
        assert_eq!(m.elements_of_node(i).len(), 2, "ring-1 node {i}");
    }
    for i in 6..=10 {
        assert_eq!(m.elements_of_node(i).len(), 1, "ring-2 node {i}");
    }
    // Faces: each quad borders its two neighbours through the spokes.
    assert_eq!(m.n_interior_faces(), 5);
    assert_eq!(m.n_boundary_faces(), 10);
}

#[test]
fn pinwheel_geometry_is_sound() {
    use bookleaf::mesh::geometry::{corner_volumes, is_untangled, quad_area};
    let m = pinwheel();
    let mut total = 0.0;
    for e in 0..5 {
        let c = m.corners(e);
        let area = quad_area(&c);
        assert!(area > 0.0, "element {e} inverted");
        assert!(is_untangled(&c), "element {e} tangled");
        let cv: f64 = corner_volumes(&c).iter().sum();
        assert!(approx_eq(cv, area, 1e-12));
        total += area;
    }
    // Five-fold symmetry: all areas equal.
    let a0 = quad_area(&m.corners(0));
    for e in 1..5 {
        assert!(approx_eq(quad_area(&m.corners(e)), a0, 1e-12));
    }
    assert!(total > 0.0);
}

#[test]
fn uniform_state_is_steady_on_irregular_valence() {
    // The acceleration gather at the valence-5 node must cancel exactly
    // under uniform pressure, like any interior node.
    let mut mesh = pinwheel();
    let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
    let mut st = HydroState::new(&mesh, &mat, |_| 1.0, |_| 2.5, |_| Vec2::ZERO).unwrap();
    let range = LocalRange::whole(&mesh);
    let x0 = mesh.nodes[0];
    for _ in 0..10 {
        lagstep(
            &mut mesh,
            &mat,
            &mut st,
            range,
            1e-3,
            &LagOptions::default(),
            &mut NoComm,
        )
        .unwrap();
    }
    assert!(mesh.nodes[0].distance(x0) < 1e-13, "centre node drifted");
    assert!(st.u[0].norm() < 1e-13);
    for e in 0..5 {
        assert!(approx_eq(st.rho[e], 1.0, 1e-12));
    }
}

#[test]
fn pressure_imbalance_moves_the_valence5_node_correctly() {
    // Pressurise one sector: the centre node must accelerate away from
    // it, and total energy stays conserved through the irregular gather.
    let mut mesh = pinwheel();
    let mat = MaterialTable::single(EosSpec::ideal_gas(1.4));
    let mut st = HydroState::new(
        &mesh,
        &mat,
        |_| 1.0,
        |e| if e == 0 { 10.0 } else { 1.0 },
        |_| Vec2::ZERO,
    )
    .unwrap();
    let range = LocalRange::whole(&mesh);
    let e0 = st.total_energy(&mesh, range);
    // Element 0 spans angles [0, 72deg]; its centroid direction:
    let hot_dir = Vec2::new(36f64.to_radians().cos(), 36f64.to_radians().sin());
    for _ in 0..20 {
        lagstep(
            &mut mesh,
            &mat,
            &mut st,
            range,
            5e-4,
            &LagOptions::default(),
            &mut NoComm,
        )
        .unwrap();
    }
    let disp = mesh.nodes[0];
    assert!(disp.norm() > 1e-6, "centre node should move");
    assert!(
        disp.normalized().dot(hot_dir) < -0.5,
        "centre should be pushed away from the hot sector, moved {disp:?}"
    );
    let e1 = st.total_energy(&mesh, range);
    assert!(approx_eq(e0, e1, 1e-9), "energy drift on irregular mesh");
}

#[test]
fn pinwheel_survives_partitioning() {
    // The decomposition machinery must handle irregular valence too.
    use bookleaf::mesh::SubMeshPlan;
    let m = pinwheel();
    let owner = vec![0usize, 0, 1, 1, 1];
    let subs = SubMeshPlan::build(&m, &owner, 2).unwrap();
    assert_eq!(subs[0].n_owned_el, 2);
    assert_eq!(subs[1].n_owned_el, 3);
    for s in &subs {
        s.mesh.validate().unwrap();
        // The centre node is adjacent to elements of both ranks: it must
        // be active on both, owned by rank 0 (the minimum).
        let centre_local = s.nd_l2g.iter().position(|&g| g == 0).unwrap();
        assert!(centre_local < s.n_active_nd);
        assert_eq!(s.nd_owner[centre_local], 0);
    }
}
