//! Workspace smoke test: the Sod deck end-to-end through the serial
//! executor, reached exclusively via the `bookleaf` facade crate's
//! front door (`bookleaf::Simulation`). This is the cheapest full-stack
//! exercise of the build: deck construction (`core::decks`), mesh
//! generation (`mesh`), the material table (`eos`), every Lagrangian
//! kernel (`hydro`) and the timer/error plumbing (`util`) all have to
//! work for it to pass.

use bookleaf::core::decks;
use bookleaf::hydro::LocalRange;
use bookleaf::Simulation;

#[test]
fn sod_runs_end_to_end_with_physical_bounds() {
    let mut sim = Simulation::builder()
        .deck(decks::sod(60, 3))
        .final_time(0.1)
        .build()
        .expect("valid deck");
    let report = sim.run().expect("run to completion");

    assert!(
        report.steps > 10,
        "suspiciously few steps: {}",
        report.steps
    );
    assert!(
        (report.time - 0.1).abs() < 1e-12,
        "stopped at t = {}",
        report.time
    );
    // The unified report covers the serial case: one rank, no traffic.
    assert_eq!(report.ranks, 1);
    assert_eq!(report.comm.messages_sent, 0);

    // Density stays inside the physical envelope of the Sod problem:
    // between the driven-side and ambient initial states (1.0 / 0.125),
    // with a small tolerance for shock overshoot.
    let st = sim.state();
    for (e, &rho) in st.rho.iter().enumerate() {
        assert!(rho.is_finite(), "non-finite density in element {e}");
        assert!(
            (0.1..=1.2).contains(&rho),
            "density out of bounds in element {e}: {rho}"
        );
    }

    // Internal energy stays positive and bounded; total energy is
    // conserved to round-off by the compatible-hydro discretisation.
    for (e, &ein) in st.ein.iter().enumerate() {
        assert!(
            ein.is_finite() && ein > 0.0 && ein < 10.0,
            "internal energy out of bounds in element {e}: {ein}"
        );
    }
    assert!(
        report.energy_drift() < 1e-9,
        "energy drift {}",
        report.energy_drift()
    );

    // The facade's sibling re-exports agree about the run's extents.
    let range = LocalRange::whole(sim.mesh());
    assert!(st.total_mass(range) > 0.0);
}
