//! Workspace smoke test: the Sod deck end-to-end through the serial
//! [`Driver`], reached exclusively via the `bookleaf` facade crate's
//! re-exports. This is the cheapest full-stack exercise of the build:
//! deck construction (`core::decks`), mesh generation (`mesh`), the
//! material table (`eos`), every Lagrangian kernel (`hydro`) and the
//! timer/error plumbing (`util`) all have to work for it to pass.

use bookleaf::core::{decks, Driver, RunConfig};
use bookleaf::hydro::LocalRange;

#[test]
fn sod_runs_end_to_end_with_physical_bounds() {
    let deck = decks::sod(60, 3);
    let config = RunConfig {
        final_time: 0.1,
        ..RunConfig::default()
    };
    let mut driver = Driver::new(deck, config).expect("valid deck");
    let summary = driver.run().expect("run to completion");

    assert!(
        summary.steps > 10,
        "suspiciously few steps: {}",
        summary.steps
    );
    assert!(
        (summary.time - 0.1).abs() < 1e-12,
        "stopped at t = {}",
        summary.time
    );

    // Density stays inside the physical envelope of the Sod problem:
    // between the driven-side and ambient initial states (1.0 / 0.125),
    // with a small tolerance for shock overshoot.
    let st = driver.state();
    for (e, &rho) in st.rho.iter().enumerate() {
        assert!(rho.is_finite(), "non-finite density in element {e}");
        assert!(
            (0.1..=1.2).contains(&rho),
            "density out of bounds in element {e}: {rho}"
        );
    }

    // Internal energy stays positive and bounded; total energy is
    // conserved to round-off by the compatible-hydro discretisation.
    for (e, &ein) in st.ein.iter().enumerate() {
        assert!(
            ein.is_finite() && ein > 0.0 && ein < 10.0,
            "internal energy out of bounds in element {e}: {ein}"
        );
    }
    assert!(
        summary.energy_drift() < 1e-9,
        "energy drift {}",
        summary.energy_drift()
    );

    // The facade's sibling re-exports agree about the run's extents.
    let range = LocalRange::whole(driver.mesh());
    assert!(st.total_mass(range) > 0.0);
}
